//! The grid executor: CTAs in launch order, barrier-phase thread scheduling.

use fsp_isa::MemSpace;

use crate::checkpoint::{Checkpoint, CheckpointConfig};
use crate::exec::{step, AccessLog, ExecCtx, SimFault, SrcLog, StepEffect};
use crate::hook::ExecHook;
use crate::launch::Launch;
use crate::mem::MemBlock;
use crate::thread::{ThreadCoords, ThreadState, ThreadStatus};
use crate::PARAM_BASE;

/// Summary of a completed (fault-free or survivable-fault) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total dynamic instructions retired across all threads. For runs
    /// resumed from a checkpoint this covers the executed suffix only.
    pub instructions: u64,
    /// Number of barrier releases across all CTAs (suffix-only when
    /// resumed).
    pub barriers: u64,
    /// Total threads executed.
    pub threads: u32,
}

/// How threads of a CTA are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Threads run to the next barrier one at a time, in thread-id order —
    /// the fast default; functionally equivalent for race-free kernels.
    #[default]
    ThreadSerial,
    /// Warps of `width` lanes run in lockstep with a SIMT reconvergence
    /// stack, as GPGPU-Sim executes PTXPlus. Detects divergent
    /// `bar.sync` ([`SimFault::BarrierDivergence`]).
    WarpLockstep {
        /// Lanes per warp (32 on NVIDIA hardware).
        width: u32,
    },
}

/// The functional simulator.
///
/// Stateless between runs; construct once and reuse. See the crate docs for
/// the scheduling model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulator {
    mode: ExecMode,
}

/// Reusable per-worker buffers for [`Simulator::run_from_with`]: the
/// thread-state vector and shared-memory image a resume clones out of the
/// checkpoint. Campaigns resume thousands of runs per worker; reusing one
/// scratch keeps those clones off the allocator.
#[derive(Debug)]
pub struct ResumeScratch {
    threads: Vec<ThreadState>,
    shared: MemBlock,
}

impl Default for ResumeScratch {
    fn default() -> Self {
        ResumeScratch {
            threads: Vec::new(),
            shared: MemBlock::with_space(0, MemSpace::Shared),
        }
    }
}

/// Resets a CTA's shared memory and writes the launch parameters at the
/// base.
fn reset_shared(shared: &mut MemBlock, launch: &Launch) {
    shared.clear();
    for (i, &p) in launch.param_values().iter().enumerate() {
        shared
            .store(PARAM_BASE + 4 * i as u32, p)
            .expect("parameters fit in shared memory");
    }
}

/// (Re)builds the thread states of the CTA at `(cx, cy)` in `threads`,
/// reusing existing allocations.
fn fill_cta_threads(threads: &mut Vec<ThreadState>, launch: &Launch, cx: u32, cy: u32) {
    let (gx, gy) = launch.grid_dim();
    let (bx, by, bz) = launch.block_dim();
    let mut idx = 0;
    for tz in 0..bz {
        for ty in 0..by {
            for tx in 0..bx {
                let coords = ThreadCoords {
                    tid: (tx, ty, tz),
                    ctaid: (cx, cy),
                    ntid: (bx, by, bz),
                    nctaid: (gx, gy),
                };
                if idx < threads.len() {
                    threads[idx].reset(coords);
                } else {
                    threads.push(ThreadState::new(coords));
                }
                idx += 1;
            }
        }
    }
}

impl Simulator {
    /// Creates a simulator with the default thread-serial schedule.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            mode: ExecMode::ThreadSerial,
        }
    }

    /// Creates a warp-lockstep simulator (hardware warps are 32 lanes).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn warp_lockstep(width: u32) -> Self {
        assert!(width > 0, "warp width must be positive");
        Simulator {
            mode: ExecMode::WarpLockstep { width },
        }
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Runs `launch` against `global` memory, reporting execution events to
    /// `hook`.
    ///
    /// In thread-serial mode the hook's [`ExecHook::converged`] is polled
    /// between steps; a `true` stops the run early with the stats retired
    /// so far.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimFault`] raised by any thread (invalid or
    /// misaligned memory access, or dynamic-instruction budget exhaustion).
    /// On error, `global` is left in its partially-updated state — injection
    /// campaigns treat the run as crashed/hung and discard it.
    pub fn run<H: ExecHook>(
        &self,
        launch: &Launch,
        global: &mut MemBlock,
        hook: &mut H,
    ) -> Result<RunStats, SimFault> {
        let program = launch.program();
        let (gx, gy) = launch.grid_dim();
        let cta_threads = launch.threads_per_cta() as usize;
        let mut budget = launch.budget();
        let mut stats = RunStats {
            instructions: 0,
            barriers: 0,
            threads: launch.num_threads(),
        };

        let mut shared = MemBlock::with_space(
            (launch.shared_size() as usize).div_ceil(4),
            MemSpace::Shared,
        );
        let mut threads: Vec<ThreadState> = Vec::with_capacity(cta_threads);
        // Reconvergence table for warp-lockstep mode, once per launch. An
        // explicit `ssy <label>` earlier in the same basic block wins
        // (PTXPlus-style annotation); otherwise the immediate
        // post-dominator from the CFG.
        let rpcs: Vec<Option<usize>> = match self.mode {
            ExecMode::ThreadSerial => Vec::new(),
            ExecMode::WarpLockstep { .. } => {
                let cfg = program.cfg();
                let pdom = cfg.post_dominators();
                (0..program.len())
                    .map(|pc| {
                        let block = &cfg.blocks()[cfg.block_of(pc)];
                        let declared = (block.start..pc).rev().find_map(|p| {
                            let i = program.instr(p);
                            (i.opcode == fsp_isa::Opcode::Ssy)
                                .then_some(i.target)
                                .flatten()
                        });
                        declared.or_else(|| pdom[cfg.block_of(pc)].map(|b| cfg.blocks()[b].start))
                    })
                    .collect()
            }
        };

        for cy in 0..gy {
            for cx in 0..gx {
                // Fresh shared memory per CTA, parameters at the base.
                reset_shared(&mut shared, launch);
                fill_cta_threads(&mut threads, launch, cx, cy);

                match self.mode {
                    ExecMode::ThreadSerial => {
                        if self.run_cta(
                            program,
                            global,
                            &mut shared,
                            &mut threads[..cta_threads],
                            hook,
                            &mut budget,
                            &mut stats,
                        )? {
                            stats.instructions = launch.budget() - budget;
                            return Ok(stats);
                        }
                    }
                    ExecMode::WarpLockstep { width } => self.run_cta_warps(
                        program,
                        global,
                        &mut shared,
                        &mut threads[..cta_threads],
                        hook,
                        &mut budget,
                        &mut stats,
                        width,
                        &rpcs,
                    )?,
                }
            }
        }
        stats.instructions = launch.budget() - budget;
        Ok(stats)
    }

    /// Runs `launch` like [`Simulator::run`] while capturing resumable
    /// snapshots of the machine roughly every `config.interval` retired
    /// instructions (thread-serial schedule only). The returned checkpoints
    /// are ordered by [`Checkpoint::retired`] and every per-thread
    /// [`Checkpoint::icnt`] is nondecreasing across them.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics in warp-lockstep mode: mid-warp reconvergence state is not
    /// snapshot-able.
    pub fn run_with_checkpoints<H: ExecHook>(
        &self,
        launch: &Launch,
        global: &mut MemBlock,
        hook: &mut H,
        config: CheckpointConfig,
    ) -> Result<(RunStats, Vec<Checkpoint>), SimFault> {
        assert!(
            matches!(self.mode, ExecMode::ThreadSerial),
            "checkpoint capture requires the thread-serial schedule"
        );
        let program = launch.program();
        let (gx, _) = launch.grid_dim();
        let cta_threads = launch.threads_per_cta() as usize;
        let nctas = launch.num_ctas();
        let mut budget = launch.budget();
        let mut stats = RunStats {
            instructions: 0,
            barriers: 0,
            threads: launch.num_threads(),
        };
        let mut shared = MemBlock::with_space(
            (launch.shared_size() as usize).div_ceil(4),
            MemSpace::Shared,
        );
        let mut threads: Vec<ThreadState> = Vec::with_capacity(cta_threads);
        // Retired counts of threads in already-completed CTAs; threads of
        // the running CTA are overlaid at capture time.
        let mut icnt_done = vec![0u32; launch.num_threads() as usize];
        let mut checkpoints: Vec<Checkpoint> = Vec::new();
        let mut interval = config.interval.max(1);
        let max = config.max.max(1);
        let mut next_at = interval;

        for cta in 0..nctas {
            let (cx, cy) = (cta % gx, cta / gx);
            reset_shared(&mut shared, launch);
            fill_cta_threads(&mut threads, launch, cx, cy);
            loop {
                let mut all_done = true;
                for i in 0..cta_threads {
                    if threads[i].status != ThreadStatus::Ready {
                        if threads[i].status == ThreadStatus::AtBarrier {
                            all_done = false;
                        }
                        continue;
                    }
                    loop {
                        // Between-step snapshot point: the machine state
                        // here (statuses + memories) fully determines the
                        // rest of the run under the serial schedule.
                        let retired = launch.budget() - budget;
                        if retired >= next_at {
                            let _cap = fsp_obs::span("sim.checkpoint_capture");
                            let mut icnt = icnt_done.clone();
                            for t in &threads[..cta_threads] {
                                icnt[t.coords.flat_tid() as usize] = t.icnt;
                            }
                            checkpoints.push(Checkpoint {
                                retired,
                                barriers: stats.barriers,
                                cta,
                                threads: threads[..cta_threads].to_vec(),
                                shared: shared.clone(),
                                global: global.clone(),
                                icnt,
                            });
                            if checkpoints.len() >= max {
                                // Thin to every other snapshot and double
                                // the cadence: long runs keep a bounded
                                // set at geometrically coarser spacing.
                                let mut keep = 0u32;
                                checkpoints.retain(|_| {
                                    keep += 1;
                                    keep % 2 == 1
                                });
                                interval *= 2;
                            }
                            next_at = retired + interval;
                        }
                        let mut ctx = ExecCtx {
                            program,
                            global,
                            shared: &mut shared,
                            accesses: AccessLog::default(),
                            srcs: SrcLog::default(),
                        };
                        match step(&mut threads[i], &mut ctx, hook, &mut budget)? {
                            StepEffect::Continue => {}
                            StepEffect::Barrier => {
                                all_done = false;
                                break;
                            }
                            StepEffect::Done => break,
                        }
                    }
                }
                if all_done {
                    break;
                }
                stats.barriers += 1;
                for thread in threads.iter_mut() {
                    if thread.status == ThreadStatus::AtBarrier {
                        thread.status = ThreadStatus::Ready;
                    }
                }
            }
            for t in &threads[..cta_threads] {
                icnt_done[t.coords.flat_tid() as usize] = t.icnt;
            }
        }
        stats.instructions = launch.budget() - budget;
        Ok((stats, checkpoints))
    }

    /// Resumes `launch` from `checkpoint`, skipping the already-retired
    /// golden prefix (thread-serial schedule only). `global` is overwritten
    /// with the checkpoint's image (copy-on-write, so this is O(chunk
    /// pointers)). The remaining dynamic-instruction budget is
    /// `launch.budget() - checkpoint.retired()`, which makes hang
    /// classification identical to a full run.
    ///
    /// The returned stats cover the executed suffix only.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics in warp-lockstep mode, or if the checkpoint does not belong
    /// to an equivalent launch (thread-count mismatch).
    pub fn run_from<H: ExecHook>(
        &self,
        checkpoint: &Checkpoint,
        launch: &Launch,
        global: &mut MemBlock,
        hook: &mut H,
    ) -> Result<RunStats, SimFault> {
        self.run_from_with(
            checkpoint,
            launch,
            global,
            hook,
            &mut ResumeScratch::default(),
        )
    }

    /// [`Simulator::run_from`] with caller-owned resume buffers: campaigns
    /// resume thousands of runs per worker, so the per-resume thread-state
    /// and shared-memory images are cloned into `scratch`'s allocations
    /// instead of fresh ones.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Same as [`Simulator::run_from`].
    pub fn run_from_with<H: ExecHook>(
        &self,
        checkpoint: &Checkpoint,
        launch: &Launch,
        global: &mut MemBlock,
        hook: &mut H,
        scratch: &mut ResumeScratch,
    ) -> Result<RunStats, SimFault> {
        assert!(
            matches!(self.mode, ExecMode::ThreadSerial),
            "checkpoint resume requires the thread-serial schedule"
        );
        let program = launch.program();
        let (gx, _) = launch.grid_dim();
        let cta_threads = launch.threads_per_cta() as usize;
        assert_eq!(
            checkpoint.threads.len(),
            cta_threads,
            "checkpoint does not match this launch"
        );
        let restore = fsp_obs::span("sim.checkpoint_restore");
        global.clone_from(&checkpoint.global);
        let start_budget = launch.budget().saturating_sub(checkpoint.retired);
        let mut budget = start_budget;
        let mut stats = RunStats {
            instructions: 0,
            barriers: 0,
            threads: launch.num_threads(),
        };
        let ResumeScratch { threads, shared } = scratch;
        shared.clone_from(&checkpoint.shared);
        threads.clone_from(&checkpoint.threads);
        drop(restore);
        // Finish the checkpointed CTA from its snapshot state, then the
        // remaining CTAs from scratch.
        if self.run_cta(
            program,
            global,
            shared,
            &mut threads[..cta_threads],
            hook,
            &mut budget,
            &mut stats,
        )? {
            stats.instructions = start_budget - budget;
            return Ok(stats);
        }
        for cta in (checkpoint.cta + 1)..launch.num_ctas() {
            let (cx, cy) = (cta % gx, cta / gx);
            reset_shared(shared, launch);
            fill_cta_threads(threads, launch, cx, cy);
            if self.run_cta(
                program,
                global,
                shared,
                &mut threads[..cta_threads],
                hook,
                &mut budget,
                &mut stats,
            )? {
                break;
            }
        }
        stats.instructions = start_budget - budget;
        Ok(stats)
    }

    /// Runs one CTA to completion under the serial schedule. Returns `true`
    /// if the hook reported convergence and the run should stop early.
    ///
    /// Each thread's quantum is watched by a [`SpinDetector`]: under the
    /// serial schedule a quantum has exclusive access to the machine, so a
    /// provably periodic thread (architectural state recurs with no stores
    /// in between) is aborted as [`SimFault::BudgetExceeded`] without
    /// grinding through the remaining budget.
    #[allow(clippy::too_many_arguments)]
    fn run_cta<H: ExecHook>(
        &self,
        program: &fsp_isa::KernelProgram,
        global: &mut MemBlock,
        shared: &mut MemBlock,
        threads: &mut [ThreadState],
        hook: &mut H,
        budget: &mut u64,
        stats: &mut RunStats,
    ) -> Result<bool, SimFault> {
        let mut ctx = ExecCtx {
            program,
            global,
            shared,
            accesses: AccessLog::default(),
            srcs: SrcLog::default(),
        };
        loop {
            let mut all_done = true;
            for thread in threads.iter_mut() {
                if thread.status != ThreadStatus::Ready {
                    if thread.status == ThreadStatus::AtBarrier {
                        all_done = false;
                    }
                    continue;
                }
                // Run this thread until it blocks, exits or faults.
                let mut spin = SpinDetector::new();
                loop {
                    let effect = step(thread, &mut ctx, hook, budget)?;
                    if hook.converged() {
                        return Ok(true);
                    }
                    match effect {
                        StepEffect::Continue => {}
                        StepEffect::Barrier => {
                            all_done = false;
                            break;
                        }
                        StepEffect::Done => break,
                    }
                    spin.observe(thread, ctx.accesses.has_store())?;
                }
            }
            if all_done {
                return Ok(false);
            }
            // Every live thread is at the barrier: release them all.
            stats.barriers += 1;
            for thread in threads.iter_mut() {
                if thread.status == ThreadStatus::AtBarrier {
                    thread.status = ThreadStatus::Ready;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cta_warps<H: ExecHook>(
        &self,
        program: &fsp_isa::KernelProgram,
        global: &mut MemBlock,
        shared: &mut MemBlock,
        threads: &mut [ThreadState],
        hook: &mut H,
        budget: &mut u64,
        stats: &mut RunStats,
        width: u32,
        rpcs: &[Option<usize>],
    ) -> Result<(), SimFault> {
        use crate::warp::{WarpEffect, WarpStack};
        let mut ctx = ExecCtx {
            program,
            global,
            shared,
            accesses: AccessLog::default(),
            srcs: SrcLog::default(),
        };
        let mut warps: Vec<WarpStack> = (0..threads.len())
            .collect::<Vec<_>>()
            .chunks(width as usize)
            .map(|lanes| WarpStack::new(lanes.to_vec()))
            .collect();
        loop {
            let mut any_at_barrier = false;
            for warp in &mut warps {
                match warp.run(threads, &mut ctx, hook, budget, rpcs)? {
                    WarpEffect::Done => {}
                    WarpEffect::AtBarrier => any_at_barrier = true,
                }
            }
            if !any_at_barrier {
                debug_assert!(
                    threads.iter().all(|t| t.status == ThreadStatus::Done),
                    "a warp stopped without finishing or reaching a barrier"
                );
                return Ok(());
            }
            stats.barriers += 1;
            for thread in threads.iter_mut() {
                if thread.status == ThreadStatus::AtBarrier {
                    thread.status = ThreadStatus::Ready;
                }
            }
        }
    }
}

/// Quantum step count a thread must exceed before spin detection arms.
///
/// Legitimate quanta in the workload suite are orders of magnitude shorter
/// (the longest *whole-thread* retirement stream across all evaluated
/// kernels is 588 instructions, and a quantum is a slice of one), so below
/// this threshold the detector costs one counter increment per step and
/// nothing else. The threshold is a performance knob, not a soundness one:
/// arming during a legitimate long quantum merely adds a cheap
/// pc-first state comparison per step until the quantum ends.
const SPIN_ARM_STEPS: u64 = 1 << 12;

/// Detects provably infinite loops inside a single thread quantum.
///
/// Under the serial schedule a thread's quantum has exclusive access to
/// global, shared and local memory — nothing else runs until it blocks. So
/// if the thread's complete architectural state (`pc`, registers,
/// predicates, offset registers) exactly recurs and *no store to any
/// address space* happened in between, every load repeats its previous
/// value and execution is periodic: the quantum can never end. Aborting
/// with [`SimFault::BudgetExceeded`] at that point classifies the run
/// exactly as budget exhaustion would, at a fraction of the cost.
///
/// `icnt` is deliberately excluded from the comparison: it increments every
/// retirement but only feeds hook events, never execution semantics, and a
/// fault-injection hook has necessarily already fired by the time a run
/// diverges into a spin (the fault-free run has no over-length quanta).
///
/// Snapshots are taken at power-of-two step counts (Brent's cycle-finding
/// schedule), so a period of any length is caught within a small constant
/// factor of its first full repetition.
struct SpinDetector {
    steps: u64,
    next_snap: u64,
    /// No store retired since the current snapshot was taken.
    clean: bool,
    /// Register index that broke the last full comparison, checked first:
    /// a monotone hang loop (a corrupted induction variable counting away
    /// from its bound) revisits the snapshot `pc` every iteration but
    /// keeps differing in the same striding register, so this hint turns
    /// the per-revisit scan into a single compare.
    hint: usize,
    snap: Option<Box<SpinSnapshot>>,
}

struct SpinSnapshot {
    pc: usize,
    ofs: [u32; 4],
    preds: [u8; 8],
    gprs: [u32; 128],
}

impl SpinDetector {
    fn new() -> Self {
        SpinDetector {
            steps: 0,
            next_snap: SPIN_ARM_STEPS,
            clean: false,
            hint: 0,
            snap: None,
        }
    }

    /// Observes one retired (non-terminal) step of the watched thread.
    ///
    /// `stored` is whether the step wrote memory; over-reporting is safe
    /// (it only delays detection), under-reporting would be unsound.
    #[inline]
    fn observe(&mut self, thread: &ThreadState, stored: bool) -> Result<(), SimFault> {
        self.steps += 1;
        if stored {
            self.clean = false;
        }
        if self.steps >= self.next_snap {
            self.next_snap *= 2;
            self.snap = Some(Box::new(SpinSnapshot {
                pc: thread.pc,
                ofs: thread.ofs,
                preds: thread.preds,
                gprs: thread.gprs,
            }));
            self.clean = true;
        } else if self.clean {
            if let Some(s) = &self.snap {
                if s.pc == thread.pc
                    && s.gprs[self.hint] == thread.gprs[self.hint]
                    && s.ofs == thread.ofs
                    && s.preds == thread.preds
                {
                    match (0..s.gprs.len()).find(|&i| s.gprs[i] != thread.gprs[i]) {
                        Some(i) => self.hint = i,
                        None => return Err(SimFault::BudgetExceeded),
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NopHook;
    use fsp_isa::assemble;

    #[test]
    fn barrier_communicates_through_shared() {
        // Thread 0 writes a value to shared memory before the barrier; all
        // threads read it after and store to their global slot.
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            // set.eq leaves the zero flag CLEAR when the comparison holds
            // (the boolean result is all-ones), so "branch if equal" is
            // `set.eq` + `@$p0.ne` — exactly the idiom in the paper's
            // PathFinder listing.
            set.eq.u32.u32 $p0/$o127, $r1, $r124
            @$p0.ne bra writer
            bra join
            writer:
            mov.u32 $r2, 0x2A
            mov.u32 s[0x0100], $r2
            join:
            bar.sync 0x0
            mov.u32 $r3, s[0x0100]
            shl.u32 $r4, $r1, 0x2
            add.u32 $r4, $r4, s[0x0010]
            st.global.u32 [$r4], $r3
            exit
            "#,
        )
        .unwrap();
        let mut global = MemBlock::with_words(8);
        let launch = Launch::new(p).grid(1, 1).block(8, 1, 1).param(0);
        let stats = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap();
        assert_eq!(global.to_vec(), [42u32; 8]);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.threads, 8);
    }

    #[test]
    fn provable_spin_aborts_without_draining_budget() {
        // With a budget this large, only spin detection lets the run
        // terminate in test time.
        let p = assemble("t", "spin: bra spin").unwrap();
        let mut global = MemBlock::with_words(1);
        let launch = Launch::new(p).instr_budget(1 << 40);
        let err = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap_err();
        assert_eq!(err, SimFault::BudgetExceeded);
    }

    #[test]
    fn long_finite_loop_is_not_flagged_as_spin() {
        // 100k iterations, no stores, register state never recurs: must run
        // to completion even though the quantum is far past the arm
        // threshold.
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x186A0
            loop:
            sub.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, $r124
            @$p0.ne bra loop
            mov.u32 $r2, s[0x0010]
            st.global.u32 [$r2], $r1
            exit
            "#,
        )
        .unwrap();
        let mut global = MemBlock::with_words(1);
        let launch = Launch::new(p).instr_budget(1 << 40).param(0);
        let stats = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap();
        assert_eq!(global.load(0).unwrap(), 0);
        assert!(stats.instructions > 100_000);
    }

    #[test]
    fn budget_exhaustion_reports_hang() {
        let p = assemble("t", "spin: bra spin").unwrap();
        let mut global = MemBlock::with_words(1);
        let launch = Launch::new(p).instr_budget(1000);
        let err = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap_err();
        assert_eq!(err, SimFault::BudgetExceeded);
    }

    #[test]
    fn oob_store_faults() {
        let p = assemble("t", "mov.u32 $r1, 0x1000\nst.global.u32 [$r1], $r1\nexit").unwrap();
        let mut global = MemBlock::with_words(4);
        let launch = Launch::new(p);
        let err = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap_err();
        assert!(matches!(
            err,
            SimFault::InvalidAccess {
                space: MemSpace::Global,
                ..
            }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            cvt.u32.u16 $r2, %ctaid.x
            mul.lo.u32 $r3, $r2, $r1
            shl.u32 $r4, $r1, 0x2
            add.u32 $r4, $r4, s[0x0010]
            st.global.u32 [$r4], $r3
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p).grid(2, 1).block(4, 1, 1).param(0);
        let run = || {
            let mut g = MemBlock::with_words(16);
            Simulator::new().run(&launch, &mut g, &mut NopHook).unwrap();
            g.to_vec()
        };
        assert_eq!(run(), run());
    }

    /// A multi-CTA, barrier-using kernel for checkpoint tests.
    fn checkpoint_kernel() -> Launch {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            cvt.u32.u16 $r2, %ctaid.x
            mul.lo.u32 $r3, $r2, $r1
            mov.u32 $r5, 0x0
            mov.u32 $r6, 0x8
            loop:
            add.u32 $r3, $r3, $r1
            add.u32 $r5, $r5, 0x1
            set.lt.u32.u32 $p0/$o127, $r5, $r6
            @$p0.ne bra loop
            bar.sync 0x0
            mad.lo.u32 $r4, $r2, 0x4, $r1
            shl.u32 $r4, $r4, 0x2
            add.u32 $r4, $r4, s[0x0010]
            st.global.u32 [$r4], $r3
            exit
            "#,
        )
        .unwrap();
        Launch::new(p)
            .grid(3, 1)
            .block(4, 1, 1)
            .param(0)
            .instr_budget(100_000)
    }

    #[test]
    fn checkpointed_run_matches_plain_run() {
        let launch = checkpoint_kernel();
        let mut plain = MemBlock::with_words(16);
        let plain_stats = Simulator::new()
            .run(&launch, &mut plain, &mut NopHook)
            .unwrap();
        let mut ckpt = MemBlock::with_words(16);
        let (stats, cps) = Simulator::new()
            .run_with_checkpoints(
                &launch,
                &mut ckpt,
                &mut NopHook,
                CheckpointConfig {
                    interval: 16,
                    max: 64,
                },
            )
            .unwrap();
        assert_eq!(stats, plain_stats);
        assert_eq!(ckpt, plain);
        assert!(!cps.is_empty(), "a 16-instruction cadence captures some");
        assert!(cps.windows(2).all(|w| w[0].retired < w[1].retired));
        for tid in 0..launch.num_threads() {
            assert!(
                cps.windows(2).all(|w| w[0].icnt(tid) <= w[1].icnt(tid)),
                "per-thread icnt must be nondecreasing"
            );
        }
    }

    #[test]
    fn resume_from_every_checkpoint_reproduces_the_run() {
        let launch = checkpoint_kernel();
        let mut golden = MemBlock::with_words(16);
        let golden_stats = Simulator::new()
            .run(&launch, &mut golden, &mut NopHook)
            .unwrap();
        let mut tmp = MemBlock::with_words(16);
        let (_, cps) = Simulator::new()
            .run_with_checkpoints(
                &launch,
                &mut tmp,
                &mut NopHook,
                CheckpointConfig {
                    interval: 7,
                    max: 1000,
                },
            )
            .unwrap();
        assert!(cps.len() > 3, "want snapshots across CTA boundaries");
        let mut resumed = MemBlock::with_words(16);
        for cp in &cps {
            let stats = Simulator::new()
                .run_from(cp, &launch, &mut resumed, &mut NopHook)
                .unwrap();
            assert_eq!(resumed, golden, "resume at retired={}", cp.retired());
            assert_eq!(
                stats.instructions,
                golden_stats.instructions - cp.retired(),
                "suffix stats count only the skipped-prefix remainder"
            );
        }
    }

    #[test]
    fn checkpoint_thinning_bounds_the_set() {
        let launch = checkpoint_kernel();
        let mut g = MemBlock::with_words(16);
        let (_, cps) = Simulator::new()
            .run_with_checkpoints(
                &launch,
                &mut g,
                &mut NopHook,
                CheckpointConfig {
                    interval: 1,
                    max: 8,
                },
            )
            .unwrap();
        assert!(cps.len() <= 8, "thinning keeps the set bounded");
        assert!(cps.windows(2).all(|w| w[0].retired < w[1].retired));
    }

    #[test]
    fn hang_budget_is_identical_when_resumed() {
        // A kernel that spins forever: full run and resumed run must both
        // classify as BudgetExceeded, with the resumed budget shrunk by
        // exactly the skipped prefix.
        let p = assemble("t", "spin: bra spin").unwrap();
        let launch = Launch::new(p).instr_budget(1000);
        let mut g = MemBlock::with_words(1);
        let err = Simulator::new()
            .run_with_checkpoints(&launch, &mut g, &mut NopHook, CheckpointConfig::default())
            .unwrap_err();
        assert_eq!(err, SimFault::BudgetExceeded);
    }
}
