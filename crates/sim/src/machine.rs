//! The grid executor: CTAs in launch order, barrier-phase thread scheduling.

use fsp_isa::MemSpace;

use crate::exec::{step, ExecCtx, SimFault, StepEffect};
use crate::hook::ExecHook;
use crate::launch::Launch;
use crate::mem::MemBlock;
use crate::thread::{ThreadCoords, ThreadState, ThreadStatus};
use crate::PARAM_BASE;

/// Summary of a completed (fault-free or survivable-fault) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Total dynamic instructions retired across all threads.
    pub instructions: u64,
    /// Number of barrier releases across all CTAs.
    pub barriers: u64,
    /// Total threads executed.
    pub threads: u32,
}

/// How threads of a CTA are scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Threads run to the next barrier one at a time, in thread-id order —
    /// the fast default; functionally equivalent for race-free kernels.
    #[default]
    ThreadSerial,
    /// Warps of `width` lanes run in lockstep with a SIMT reconvergence
    /// stack, as GPGPU-Sim executes PTXPlus. Detects divergent
    /// `bar.sync` ([`SimFault::BarrierDivergence`]).
    WarpLockstep {
        /// Lanes per warp (32 on NVIDIA hardware).
        width: u32,
    },
}

/// The functional simulator.
///
/// Stateless between runs; construct once and reuse. See the crate docs for
/// the scheduling model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulator {
    mode: ExecMode,
}

impl Simulator {
    /// Creates a simulator with the default thread-serial schedule.
    #[must_use]
    pub fn new() -> Self {
        Simulator {
            mode: ExecMode::ThreadSerial,
        }
    }

    /// Creates a warp-lockstep simulator (hardware warps are 32 lanes).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn warp_lockstep(width: u32) -> Self {
        assert!(width > 0, "warp width must be positive");
        Simulator {
            mode: ExecMode::WarpLockstep { width },
        }
    }

    /// The scheduling mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Runs `launch` against `global` memory, reporting execution events to
    /// `hook`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimFault`] raised by any thread (invalid or
    /// misaligned memory access, or dynamic-instruction budget exhaustion).
    /// On error, `global` is left in its partially-updated state — injection
    /// campaigns treat the run as crashed/hung and discard it.
    pub fn run<H: ExecHook>(
        &self,
        launch: &Launch,
        global: &mut MemBlock,
        hook: &mut H,
    ) -> Result<RunStats, SimFault> {
        let program = launch.program();
        let (gx, gy) = launch.grid_dim();
        let (bx, by, bz) = launch.block_dim();
        let cta_threads = launch.threads_per_cta() as usize;
        let mut budget = launch.budget();
        let mut stats = RunStats {
            instructions: 0,
            barriers: 0,
            threads: launch.num_threads(),
        };

        let mut shared = MemBlock::with_space(
            (launch.shared_size() as usize).div_ceil(4),
            MemSpace::Shared,
        );
        let mut threads: Vec<ThreadState> = Vec::with_capacity(cta_threads);
        // Reconvergence table for warp-lockstep mode, once per launch. An
        // explicit `ssy <label>` earlier in the same basic block wins
        // (PTXPlus-style annotation); otherwise the immediate
        // post-dominator from the CFG.
        let rpcs: Vec<Option<usize>> = match self.mode {
            ExecMode::ThreadSerial => Vec::new(),
            ExecMode::WarpLockstep { .. } => {
                let cfg = program.cfg();
                let pdom = cfg.post_dominators();
                (0..program.len())
                    .map(|pc| {
                        let block = &cfg.blocks()[cfg.block_of(pc)];
                        let declared = (block.start..pc).rev().find_map(|p| {
                            let i = program.instr(p);
                            (i.opcode == fsp_isa::Opcode::Ssy)
                                .then_some(i.target)
                                .flatten()
                        });
                        declared.or_else(|| pdom[cfg.block_of(pc)].map(|b| cfg.blocks()[b].start))
                    })
                    .collect()
            }
        };

        for cy in 0..gy {
            for cx in 0..gx {
                // Fresh shared memory per CTA, parameters at the base.
                shared.clear();
                for (i, &p) in launch.param_values().iter().enumerate() {
                    shared
                        .store(PARAM_BASE + 4 * i as u32, p)
                        .expect("parameters fit in shared memory");
                }
                // (Re)build the CTA's thread states.
                let mut idx = 0;
                for tz in 0..bz {
                    for ty in 0..by {
                        for tx in 0..bx {
                            let coords = ThreadCoords {
                                tid: (tx, ty, tz),
                                ctaid: (cx, cy),
                                ntid: (bx, by, bz),
                                nctaid: (gx, gy),
                            };
                            if idx < threads.len() {
                                threads[idx].reset(coords);
                            } else {
                                threads.push(ThreadState::new(coords));
                            }
                            idx += 1;
                        }
                    }
                }

                match self.mode {
                    ExecMode::ThreadSerial => self.run_cta(
                        program,
                        global,
                        &mut shared,
                        &mut threads[..cta_threads],
                        hook,
                        &mut budget,
                        &mut stats,
                    )?,
                    ExecMode::WarpLockstep { width } => self.run_cta_warps(
                        program,
                        global,
                        &mut shared,
                        &mut threads[..cta_threads],
                        hook,
                        &mut budget,
                        &mut stats,
                        width,
                        &rpcs,
                    )?,
                }
            }
        }
        stats.instructions = launch.budget() - budget;
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cta<H: ExecHook>(
        &self,
        program: &fsp_isa::KernelProgram,
        global: &mut MemBlock,
        shared: &mut MemBlock,
        threads: &mut [ThreadState],
        hook: &mut H,
        budget: &mut u64,
        stats: &mut RunStats,
    ) -> Result<(), SimFault> {
        let mut ctx = ExecCtx {
            program,
            global,
            shared,
        };
        loop {
            let mut all_done = true;
            for thread in threads.iter_mut() {
                if thread.status != ThreadStatus::Ready {
                    if thread.status == ThreadStatus::AtBarrier {
                        all_done = false;
                    }
                    continue;
                }
                // Run this thread until it blocks, exits or faults.
                loop {
                    match step(thread, &mut ctx, hook, budget)? {
                        StepEffect::Continue => {}
                        StepEffect::Barrier => {
                            all_done = false;
                            break;
                        }
                        StepEffect::Done => break,
                    }
                }
            }
            if all_done {
                return Ok(());
            }
            // Every live thread is at the barrier: release them all.
            stats.barriers += 1;
            for thread in threads.iter_mut() {
                if thread.status == ThreadStatus::AtBarrier {
                    thread.status = ThreadStatus::Ready;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_cta_warps<H: ExecHook>(
        &self,
        program: &fsp_isa::KernelProgram,
        global: &mut MemBlock,
        shared: &mut MemBlock,
        threads: &mut [ThreadState],
        hook: &mut H,
        budget: &mut u64,
        stats: &mut RunStats,
        width: u32,
        rpcs: &[Option<usize>],
    ) -> Result<(), SimFault> {
        use crate::warp::{WarpEffect, WarpStack};
        let mut ctx = ExecCtx {
            program,
            global,
            shared,
        };
        let mut warps: Vec<WarpStack> = (0..threads.len())
            .collect::<Vec<_>>()
            .chunks(width as usize)
            .map(|lanes| WarpStack::new(lanes.to_vec()))
            .collect();
        loop {
            let mut any_at_barrier = false;
            for warp in &mut warps {
                match warp.run(threads, &mut ctx, hook, budget, rpcs)? {
                    WarpEffect::Done => {}
                    WarpEffect::AtBarrier => any_at_barrier = true,
                }
            }
            if !any_at_barrier {
                debug_assert!(
                    threads.iter().all(|t| t.status == ThreadStatus::Done),
                    "a warp stopped without finishing or reaching a barrier"
                );
                return Ok(());
            }
            stats.barriers += 1;
            for thread in threads.iter_mut() {
                if thread.status == ThreadStatus::AtBarrier {
                    thread.status = ThreadStatus::Ready;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::NopHook;
    use fsp_isa::assemble;

    #[test]
    fn barrier_communicates_through_shared() {
        // Thread 0 writes a value to shared memory before the barrier; all
        // threads read it after and store to their global slot.
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            // set.eq leaves the zero flag CLEAR when the comparison holds
            // (the boolean result is all-ones), so "branch if equal" is
            // `set.eq` + `@$p0.ne` — exactly the idiom in the paper's
            // PathFinder listing.
            set.eq.u32.u32 $p0/$o127, $r1, $r124
            @$p0.ne bra writer
            bra join
            writer:
            mov.u32 $r2, 0x2A
            mov.u32 s[0x0100], $r2
            join:
            bar.sync 0x0
            mov.u32 $r3, s[0x0100]
            shl.u32 $r4, $r1, 0x2
            add.u32 $r4, $r4, s[0x0010]
            st.global.u32 [$r4], $r3
            exit
            "#,
        )
        .unwrap();
        let mut global = MemBlock::with_words(8);
        let launch = Launch::new(p).grid(1, 1).block(8, 1, 1).param(0);
        let stats = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap();
        assert_eq!(global.words(), &[42u32; 8]);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.threads, 8);
    }

    #[test]
    fn budget_exhaustion_reports_hang() {
        let p = assemble("t", "spin: bra spin").unwrap();
        let mut global = MemBlock::with_words(1);
        let launch = Launch::new(p).instr_budget(1000);
        let err = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap_err();
        assert_eq!(err, SimFault::BudgetExceeded);
    }

    #[test]
    fn oob_store_faults() {
        let p = assemble("t", "mov.u32 $r1, 0x1000\nst.global.u32 [$r1], $r1\nexit").unwrap();
        let mut global = MemBlock::with_words(4);
        let launch = Launch::new(p);
        let err = Simulator::new()
            .run(&launch, &mut global, &mut NopHook)
            .unwrap_err();
        assert!(matches!(
            err,
            SimFault::InvalidAccess {
                space: MemSpace::Global,
                ..
            }
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = assemble(
            "t",
            r#"
            cvt.u32.u16 $r1, %tid.x
            cvt.u32.u16 $r2, %ctaid.x
            mul.lo.u32 $r3, $r2, $r1
            shl.u32 $r4, $r1, 0x2
            add.u32 $r4, $r4, s[0x0010]
            st.global.u32 [$r4], $r3
            exit
            "#,
        )
        .unwrap();
        let launch = Launch::new(p).grid(2, 1).block(4, 1, 1).param(0);
        let run = || {
            let mut g = MemBlock::with_words(16);
            Simulator::new().run(&launch, &mut g, &mut NopHook).unwrap();
            g.words().to_vec()
        };
        assert_eq!(run(), run());
    }
}
