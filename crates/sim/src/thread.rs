//! Per-thread architectural state.

use fsp_isa::Special;

use crate::mem::MemBlock;

/// Number of words of per-thread local memory (`l[...]`). Public so static
/// analyses can bound local-space addresses exactly as the machine does.
pub const LOCAL_WORDS: usize = 1024;

/// A thread's coordinates within the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadCoords {
    /// Thread index within the CTA (x, y, z).
    pub tid: (u32, u32, u32),
    /// CTA index within the grid (x, y).
    pub ctaid: (u32, u32),
    /// CTA dimensions.
    pub ntid: (u32, u32, u32),
    /// Grid dimensions.
    pub nctaid: (u32, u32),
}

impl ThreadCoords {
    /// Flat thread index within the CTA.
    #[must_use]
    pub fn flat_tid_in_cta(&self) -> u32 {
        self.tid.0 + self.tid.1 * self.ntid.0 + self.tid.2 * self.ntid.0 * self.ntid.1
    }

    /// Flat CTA index within the grid.
    #[must_use]
    pub fn flat_ctaid(&self) -> u32 {
        self.ctaid.0 + self.ctaid.1 * self.nctaid.0
    }

    /// Grid-wide flat thread index (CTAs in launch order).
    #[must_use]
    pub fn flat_tid(&self) -> u32 {
        let cta_size = self.ntid.0 * self.ntid.1 * self.ntid.2;
        self.flat_ctaid() * cta_size + self.flat_tid_in_cta()
    }

    /// Value of a special register for this thread.
    #[must_use]
    pub fn special(&self, s: Special) -> u32 {
        match s {
            Special::TidX => self.tid.0,
            Special::TidY => self.tid.1,
            Special::TidZ => self.tid.2,
            Special::NTidX => self.ntid.0,
            Special::NTidY => self.ntid.1,
            Special::CtaIdX => self.ctaid.0,
            Special::CtaIdY => self.ctaid.1,
            Special::NCtaIdX => self.nctaid.0,
            Special::NCtaIdY => self.nctaid.1,
        }
    }
}

/// Scheduling status of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadStatus {
    /// Runnable.
    Ready,
    /// Stopped at a `bar.sync`, waiting for the CTA.
    AtBarrier,
    /// Exited (via `exit`, `ret`, `retp` or falling off the end).
    Done,
}

/// Architectural state of one thread.
#[derive(Debug, Clone)]
pub(crate) struct ThreadState {
    pub coords: ThreadCoords,
    pub pc: usize,
    pub status: ThreadStatus,
    /// General-purpose registers. `$r124` is forced to zero on read.
    pub gprs: [u32; 128],
    /// 4-bit condition-code registers.
    pub preds: [u8; 8],
    /// Address-offset registers.
    pub ofs: [u32; 4],
    /// Per-thread dynamic instruction count (guard-passing retirements).
    pub icnt: u32,
    /// Lazily allocated per-thread local memory.
    pub local: Option<Box<MemBlock>>,
}

impl ThreadState {
    pub fn new(coords: ThreadCoords) -> Self {
        ThreadState {
            coords,
            pc: 0,
            status: ThreadStatus::Ready,
            gprs: [0; 128],
            preds: [0; 8],
            ofs: [0; 4],
            icnt: 0,
            local: None,
        }
    }

    /// Reinitializes in place for reuse across CTAs.
    pub fn reset(&mut self, coords: ThreadCoords) {
        self.coords = coords;
        self.pc = 0;
        self.status = ThreadStatus::Ready;
        self.gprs = [0; 128];
        self.preds = [0; 8];
        self.ofs = [0; 4];
        self.icnt = 0;
        if let Some(local) = &mut self.local {
            local.clear();
        }
    }

    pub fn local_mut(&mut self) -> &mut MemBlock {
        self.local.get_or_insert_with(|| {
            Box::new(MemBlock::with_space(LOCAL_WORDS, fsp_isa::MemSpace::Local))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(tid: (u32, u32, u32), ctaid: (u32, u32)) -> ThreadCoords {
        ThreadCoords {
            tid,
            ctaid,
            ntid: (16, 16, 1),
            nctaid: (4, 2),
        }
    }

    #[test]
    fn flat_ids() {
        let c = coords((3, 2, 0), (1, 1));
        assert_eq!(c.flat_tid_in_cta(), 3 + 2 * 16);
        assert_eq!(c.flat_ctaid(), 1 + 4);
        assert_eq!(c.flat_tid(), 5 * 256 + 35);
    }

    #[test]
    fn specials() {
        let c = coords((3, 2, 0), (1, 1));
        assert_eq!(c.special(Special::TidX), 3);
        assert_eq!(c.special(Special::TidY), 2);
        assert_eq!(c.special(Special::NTidX), 16);
        assert_eq!(c.special(Special::CtaIdY), 1);
        assert_eq!(c.special(Special::NCtaIdX), 4);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = ThreadState::new(coords((0, 0, 0), (0, 0)));
        t.gprs[5] = 42;
        t.icnt = 7;
        t.local_mut().store(0, 9).unwrap();
        t.reset(coords((1, 0, 0), (0, 0)));
        assert_eq!(t.gprs[5], 0);
        assert_eq!(t.icnt, 0);
        assert_eq!(t.local_mut().load(0).unwrap(), 0);
    }
}
