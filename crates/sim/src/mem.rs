//! Word-granular memory blocks used for global, shared and local spaces.
//!
//! Storage is chunked and copy-on-write: a block is a vector of
//! reference-counted 4 KiB chunks, so cloning a block (checkpoint capture,
//! per-injection scratch reset) is O(chunks) pointer copies and the actual
//! words are duplicated only when a chunk is first written through a given
//! clone. A campaign holding dozens of golden checkpoints therefore shares
//! one copy of every region the kernel never rewrites.

use std::sync::{Arc, OnceLock};

use crate::exec::SimFault;
use fsp_isa::MemSpace;

/// Words per copy-on-write chunk (4 KiB).
const CHUNK_WORDS: usize = 1024;
const CHUNK_SHIFT: u32 = CHUNK_WORDS.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_WORDS - 1;

type Chunk = [u32; CHUNK_WORDS];

/// The process-wide all-zero chunk every fresh or cleared block points at.
fn zero_chunk() -> &'static Arc<Chunk> {
    static ZERO: OnceLock<Arc<Chunk>> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new([0; CHUNK_WORDS]))
}

/// A byte-addressed, word-granular memory block.
///
/// All accesses must be 4-byte aligned and in bounds; violations surface as
/// [`SimFault::InvalidAccess`] / [`SimFault::Unaligned`], which the injector
/// classifies as a *crash* outcome.
///
/// Invariant: words past the logical length in the final chunk are always
/// zero (stores are bounds-checked first), so chunk-wise equality and
/// whole-chunk copies never observe stale padding.
#[derive(Debug, PartialEq, Eq)]
pub struct MemBlock {
    chunks: Vec<Arc<Chunk>>,
    words: usize,
    space: MemSpace,
}

impl Clone for MemBlock {
    fn clone(&self) -> Self {
        MemBlock {
            chunks: self.chunks.clone(),
            words: self.words,
            space: self.space,
        }
    }

    /// Reuses the chunk-pointer table allocation; the chunks themselves are
    /// shared, so resetting a scratch block to an initial image is O(chunks).
    fn clone_from(&mut self, source: &Self) {
        self.chunks.clone_from(&source.chunks);
        self.words = source.words;
        self.space = source.space;
    }
}

impl MemBlock {
    /// A block of `words` 32-bit words, zero-initialized, labelled as global
    /// memory.
    #[must_use]
    pub fn with_words(words: usize) -> Self {
        Self::with_space(words, MemSpace::Global)
    }

    /// A block sized in bytes (rounded up to a whole word).
    #[must_use]
    pub fn with_bytes(bytes: usize) -> Self {
        Self::with_words(bytes.div_ceil(4))
    }

    /// Same as [`MemBlock::with_words`] with a specific space label (used in
    /// fault reports).
    #[must_use]
    pub fn with_space(words: usize, space: MemSpace) -> Self {
        MemBlock {
            chunks: vec![zero_chunk().clone(); words.div_ceil(CHUNK_WORDS)],
            words,
            space,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.words * 4
    }

    /// Resets all words to zero without copying: every chunk pointer is
    /// swapped back to the shared zero chunk.
    pub fn clear(&mut self) {
        for chunk in &mut self.chunks {
            if !Arc::ptr_eq(chunk, zero_chunk()) {
                *chunk = zero_chunk().clone();
            }
        }
    }

    fn index(&self, addr: u32) -> Result<usize, SimFault> {
        if !addr.is_multiple_of(4) {
            return Err(SimFault::Unaligned {
                space: self.space,
                addr,
            });
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words {
            return Err(SimFault::InvalidAccess {
                space: self.space,
                addr,
            });
        }
        Ok(idx)
    }

    /// Loads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimFault::Unaligned`] or [`SimFault::InvalidAccess`].
    pub fn load(&self, addr: u32) -> Result<u32, SimFault> {
        self.index(addr)
            .map(|i| self.chunks[i >> CHUNK_SHIFT][i & CHUNK_MASK])
    }

    /// Stores `value` at byte address `addr`, materialising a private copy
    /// of the addressed chunk if it is still shared.
    ///
    /// # Errors
    ///
    /// [`SimFault::Unaligned`] or [`SimFault::InvalidAccess`].
    pub fn store(&mut self, addr: u32, value: u32) -> Result<(), SimFault> {
        let i = self.index(addr)?;
        Arc::make_mut(&mut self.chunks[i >> CHUNK_SHIFT])[i & CHUNK_MASK] = value;
        Ok(())
    }

    /// Copies the whole block out into a dense vector (fingerprinting,
    /// test assertions).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.words);
        for chunk in &self.chunks {
            let take = (self.words - out.len()).min(CHUNK_WORDS);
            out.extend_from_slice(&chunk[..take]);
        }
        out
    }

    /// Host-side helper: reads `len` words starting at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds — host readback
    /// bugs should fail loudly.
    #[must_use]
    pub fn read_words(&self, addr: u32, len: usize) -> Vec<u32> {
        assert_eq!(addr % 4, 0, "unaligned host read at {addr:#x}");
        let start = (addr / 4) as usize;
        assert!(
            start + len <= self.words,
            "host read of {len} words at {addr:#x} past end of block"
        );
        let mut out = Vec::with_capacity(len);
        let mut idx = start;
        while out.len() < len {
            let off = idx & CHUNK_MASK;
            let take = (len - out.len()).min(CHUNK_WORDS - off);
            out.extend_from_slice(&self.chunks[idx >> CHUNK_SHIFT][off..off + take]);
            idx += take;
        }
        out
    }

    /// Compares the words starting at byte address `addr` against
    /// `expected` without copying them out (golden-output checks in the
    /// injection hot path).
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    #[must_use]
    pub fn region_eq(&self, addr: u32, expected: &[u32]) -> bool {
        assert_eq!(addr % 4, 0, "unaligned host read at {addr:#x}");
        let start = (addr / 4) as usize;
        assert!(
            start + expected.len() <= self.words,
            "host compare of {} words at {addr:#x} past end of block",
            expected.len()
        );
        let mut idx = start;
        let mut rest = expected;
        while !rest.is_empty() {
            let off = idx & CHUNK_MASK;
            let take = rest.len().min(CHUNK_WORDS - off);
            if self.chunks[idx >> CHUNK_SHIFT][off..off + take] != rest[..take] {
                return false;
            }
            idx += take;
            rest = &rest[take..];
        }
        true
    }

    /// Host-side helper: writes a `u32` slice starting at byte address
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds — host setup bugs
    /// should fail loudly.
    pub fn write_slice(&mut self, addr: u32, data: &[u32]) {
        assert_eq!(addr % 4, 0, "unaligned host write at {addr:#x}");
        let start = (addr / 4) as usize;
        assert!(
            start + data.len() <= self.words,
            "host write of {} words at {addr:#x} past end of block",
            data.len()
        );
        let mut idx = start;
        let mut rest = data;
        while !rest.is_empty() {
            let off = idx & CHUNK_MASK;
            let take = rest.len().min(CHUNK_WORDS - off);
            Arc::make_mut(&mut self.chunks[idx >> CHUNK_SHIFT])[off..off + take]
                .copy_from_slice(&rest[..take]);
            idx += take;
            rest = &rest[take..];
        }
    }

    /// Host-side helper: writes an `f32` slice starting at byte address
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        assert_eq!(addr % 4, 0, "unaligned host write at {addr:#x}");
        let start = (addr / 4) as usize;
        assert!(
            start + data.len() <= self.words,
            "host write of {} words at {addr:#x} past end of block",
            data.len()
        );
        for (i, v) in data.iter().enumerate() {
            let idx = start + i;
            Arc::make_mut(&mut self.chunks[idx >> CHUNK_SHIFT])[idx & CHUNK_MASK] = v.to_bits();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = MemBlock::with_words(4);
        m.store(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.load(0).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = MemBlock::with_words(4);
        assert!(matches!(m.load(16), Err(SimFault::InvalidAccess { .. })));
        assert!(matches!(
            MemBlock::with_words(4).store(100, 1),
            Err(SimFault::InvalidAccess { .. })
        ));
    }

    #[test]
    fn unaligned_faults() {
        let m = MemBlock::with_words(4);
        assert!(matches!(m.load(2), Err(SimFault::Unaligned { .. })));
    }

    #[test]
    fn host_helpers() {
        let mut m = MemBlock::with_bytes(30); // rounds to 8 words
        assert_eq!(m.len_bytes(), 32);
        m.write_slice(4, &[1, 2, 3]);
        assert_eq!(m.read_words(4, 3), &[1, 2, 3]);
        assert!(m.region_eq(4, &[1, 2, 3]));
        assert!(!m.region_eq(4, &[1, 2, 4]));
        m.write_f32_slice(16, &[1.5]);
        assert_eq!(m.load(16).unwrap(), 1.5f32.to_bits());
        m.clear();
        assert_eq!(m.load(4).unwrap(), 0);
    }

    #[test]
    fn clone_shares_chunks_until_written() {
        let mut a = MemBlock::with_words(3 * CHUNK_WORDS);
        a.store(0, 7).unwrap();
        let mut b = a.clone();
        assert!(
            Arc::ptr_eq(&a.chunks[0], &b.chunks[0]),
            "clone is O(chunks)"
        );
        b.store(4, 9).unwrap();
        assert!(
            !Arc::ptr_eq(&a.chunks[0], &b.chunks[0]),
            "first write detaches the chunk"
        );
        assert_eq!(a.load(4).unwrap(), 0, "original unaffected");
        assert_eq!(b.load(0).unwrap(), 7, "detached chunk keeps prior words");
        assert!(
            Arc::ptr_eq(&a.chunks[1], &b.chunks[1]),
            "untouched chunks stay shared"
        );
    }

    #[test]
    fn clone_from_resets_to_source_image() {
        let mut golden = MemBlock::with_words(2 * CHUNK_WORDS + 5);
        golden.write_slice(0, &[1, 2, 3]);
        let mut scratch = golden.clone();
        scratch
            .store(4 * (2 * CHUNK_WORDS as u32 + 5), 42)
            .unwrap_err();
        scratch.store(4, 99).unwrap();
        scratch.clone_from(&golden);
        assert_eq!(scratch, golden);
        assert_eq!(scratch.load(4).unwrap(), 2);
    }

    #[test]
    fn cross_chunk_ranges() {
        let n = 2 * CHUNK_WORDS + 10;
        let mut m = MemBlock::with_words(n);
        let data: Vec<u32> = (0..n as u32).collect();
        m.write_slice(0, &data);
        assert_eq!(m.to_vec(), data);
        let mid = CHUNK_WORDS as u32 * 4 - 8;
        assert_eq!(
            m.read_words(mid, 4),
            &data[CHUNK_WORDS - 2..CHUNK_WORDS + 2]
        );
        assert!(m.region_eq(0, &data));
        m.clear();
        assert_eq!(m.to_vec(), vec![0; n]);
    }

    #[test]
    fn tail_padding_stays_zero() {
        // Logical length straddles into a partial final chunk; equality and
        // to_vec must ignore the padding (which stores can never touch).
        let mut a = MemBlock::with_words(10);
        let b = MemBlock::with_words(10);
        assert!(a.store(40, 1).is_err(), "past-end store rejected");
        assert_eq!(a, b);
        assert_eq!(a.to_vec().len(), 10);
    }
}
