//! Word-granular memory blocks used for global, shared and local spaces.

use crate::exec::SimFault;
use fsp_isa::MemSpace;

/// A byte-addressed, word-granular memory block.
///
/// All accesses must be 4-byte aligned and in bounds; violations surface as
/// [`SimFault::InvalidAccess`] / [`SimFault::Unaligned`], which the injector
/// classifies as a *crash* outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemBlock {
    words: Vec<u32>,
    space: MemSpace,
}

impl MemBlock {
    /// A block of `words` 32-bit words, zero-initialized, labelled as global
    /// memory.
    #[must_use]
    pub fn with_words(words: usize) -> Self {
        MemBlock {
            words: vec![0; words],
            space: MemSpace::Global,
        }
    }

    /// A block sized in bytes (rounded up to a whole word).
    #[must_use]
    pub fn with_bytes(bytes: usize) -> Self {
        Self::with_words(bytes.div_ceil(4))
    }

    /// Same as [`MemBlock::with_words`] with a specific space label (used in
    /// fault reports).
    #[must_use]
    pub fn with_space(words: usize, space: MemSpace) -> Self {
        MemBlock {
            words: vec![0; words],
            space,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Resets all words to zero without reallocating.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    fn index(&self, addr: u32) -> Result<usize, SimFault> {
        if !addr.is_multiple_of(4) {
            return Err(SimFault::Unaligned {
                space: self.space,
                addr,
            });
        }
        let idx = (addr / 4) as usize;
        if idx >= self.words.len() {
            return Err(SimFault::InvalidAccess {
                space: self.space,
                addr,
            });
        }
        Ok(idx)
    }

    /// Loads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimFault::Unaligned`] or [`SimFault::InvalidAccess`].
    pub fn load(&self, addr: u32) -> Result<u32, SimFault> {
        self.index(addr).map(|i| self.words[i])
    }

    /// Stores `value` at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`SimFault::Unaligned`] or [`SimFault::InvalidAccess`].
    pub fn store(&mut self, addr: u32, value: u32) -> Result<(), SimFault> {
        let i = self.index(addr)?;
        self.words[i] = value;
        Ok(())
    }

    /// View of the underlying words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Mutable view of the underlying words (host-side initialization).
    pub fn words_mut(&mut self) -> &mut [u32] {
        &mut self.words
    }

    /// Host-side helper: writes a `u32` slice starting at byte address
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds — host setup bugs
    /// should fail loudly.
    pub fn write_slice(&mut self, addr: u32, data: &[u32]) {
        assert_eq!(addr % 4, 0, "unaligned host write at {addr:#x}");
        let start = (addr / 4) as usize;
        self.words[start..start + data.len()].copy_from_slice(data);
    }

    /// Host-side helper: writes an `f32` slice starting at byte address
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    pub fn write_f32_slice(&mut self, addr: u32, data: &[f32]) {
        assert_eq!(addr % 4, 0, "unaligned host write at {addr:#x}");
        let start = (addr / 4) as usize;
        for (slot, v) in self.words[start..start + data.len()].iter_mut().zip(data) {
            *slot = v.to_bits();
        }
    }

    /// Host-side helper: reads `len` words starting at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range is unaligned or out of bounds.
    #[must_use]
    pub fn read_slice(&self, addr: u32, len: usize) -> &[u32] {
        assert_eq!(addr % 4, 0, "unaligned host read at {addr:#x}");
        let start = (addr / 4) as usize;
        &self.words[start..start + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let mut m = MemBlock::with_words(4);
        m.store(8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load(8).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.load(0).unwrap(), 0);
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = MemBlock::with_words(4);
        assert!(matches!(m.load(16), Err(SimFault::InvalidAccess { .. })));
        assert!(matches!(
            MemBlock::with_words(4).store(100, 1),
            Err(SimFault::InvalidAccess { .. })
        ));
    }

    #[test]
    fn unaligned_faults() {
        let m = MemBlock::with_words(4);
        assert!(matches!(m.load(2), Err(SimFault::Unaligned { .. })));
    }

    #[test]
    fn host_helpers() {
        let mut m = MemBlock::with_bytes(30); // rounds to 8 words
        assert_eq!(m.len_bytes(), 32);
        m.write_slice(4, &[1, 2, 3]);
        assert_eq!(m.read_slice(4, 3), &[1, 2, 3]);
        m.write_f32_slice(16, &[1.5]);
        assert_eq!(m.load(16).unwrap(), 1.5f32.to_bits());
        m.clear();
        assert_eq!(m.load(4).unwrap(), 0);
    }
}
