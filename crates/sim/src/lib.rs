#![warn(missing_docs)]
//! Deterministic functional SIMT simulator for the `fsp-isa` PTXPlus-like
//! ISA.
//!
//! The simulator executes a kernel grid the way GPGPU-Sim's functional model
//! does, with the scheduling pinned down so that *every run of the same
//! launch is bit-identical* — the property fault injection depends on:
//!
//! * CTAs execute sequentially in launch order.
//! * Inside a CTA, threads execute in thread-id order in *barrier phases*:
//!   each thread runs until it hits `bar.sync`, exits, or faults; when every
//!   live thread of the CTA is waiting, the barrier releases.
//!
//! The evaluated kernels only communicate through shared memory across
//! barriers (and never race on global memory), so this schedule is
//! functionally equivalent to any SIMT interleaving. A second execution
//! mode, [`Simulator::warp_lockstep`], runs warps with a SIMT
//! reconvergence stack exactly as GPGPU-Sim does (honoring `ssy`
//! annotations, deriving reconvergence points from CFG post-dominators
//! otherwise) and is cross-validated to produce bit-identical results on
//! every workload.
//!
//! Fault injection and tracing attach through the [`ExecHook`] trait, which
//! observes every retired instruction and may override register write-back
//! values (a single-bit flip in the destination register is exactly such an
//! override).
//!
//! # Example
//!
//! ```
//! use fsp_isa::assemble;
//! use fsp_sim::{Launch, MemBlock, NopHook, Simulator};
//!
//! // Each thread increments one element of a global array.
//! let program = assemble(
//!     "inc",
//!     r#"
//!     cvt.u32.u16 $r1, %tid.x
//!     shl.u32     $r2, $r1, 0x2
//!     add.u32     $r2, $r2, s[0x0010]   // param 0: base address
//!     ld.global.u32 $r3, [$r2]
//!     add.u32     $r3, $r3, 0x1
//!     st.global.u32 [$r2], $r3
//!     exit
//!     "#,
//! )?;
//! let mut global = MemBlock::with_words(64);
//! let launch = Launch::new(program).grid(1, 1).block(8, 1, 1).param(0);
//! let stats = Simulator::new().run(&launch, &mut global, &mut NopHook)?;
//! assert_eq!(global.load(0)?, 1);
//! assert!(stats.instructions > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod checkpoint;
mod exec;
mod golden;
mod hook;
mod launch;
mod machine;
mod mem;
mod thread;
mod trace;
mod warp;

pub use checkpoint::{Checkpoint, CheckpointConfig};
pub use exec::{apply_half_neg, eval_op, flags_of, operand_ty, pred_test, SimFault};
pub use golden::{
    GlobalWriteProfile, GlobalWriteStats, GoldenRecorder, GoldenStore, GoldenThread, GoldenTrace,
};
pub use hook::{ExecHook, MemAccess, NopHook, RetireEvent, Writeback};
pub use launch::Launch;
pub use machine::{ExecMode, ResumeScratch, RunStats, Simulator};
pub use mem::MemBlock;
pub use thread::{ThreadCoords, LOCAL_WORDS};
pub use trace::{FullTraces, KernelTrace, ThreadTrace, TraceEntry, Tracer};

/// Byte offset of the first kernel parameter in shared memory
/// (PTXPlus convention: `s[0x0010]` is parameter 0).
pub const PARAM_BASE: u32 = fsp_isa::PARAM_BASE;
