//! Resumable machine snapshots of the deterministic golden run.
//!
//! The thread-serial schedule is a pure function of the launch, so a
//! snapshot of (thread states, shared memory, global memory) between two
//! steps fully determines the rest of the run. Injection campaigns capture
//! snapshots every K retired instructions during the fault-free run and
//! resume each injected run from the closest snapshot at or before its
//! fault site, skipping the shared golden prefix entirely
//! ([`crate::Simulator::run_from`]).
//!
//! Memory blocks are copy-on-write ([`crate::MemBlock`]), so a snapshot's
//! global image shares every chunk the kernel did not rewrite in the
//! preceding interval; dozens of checkpoints cost far less than dozens of
//! full memory copies.

use crate::mem::MemBlock;
use crate::thread::ThreadState;

/// Capture cadence for [`crate::Simulator::run_with_checkpoints`].
#[derive(Debug, Clone, Copy)]
pub struct CheckpointConfig {
    /// Snapshot cadence in retired instructions.
    pub interval: u64,
    /// Upper bound on retained snapshots: when reached, every other
    /// snapshot is dropped and the interval doubles, keeping long runs at
    /// a bounded memory cost with geometrically coarser spacing.
    pub max: usize,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: 128,
            max: 64,
        }
    }
}

/// A resumable snapshot of the machine between two steps of the
/// thread-serial schedule.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Instructions retired grid-wide at the snapshot.
    pub(crate) retired: u64,
    /// Barrier releases counted so far (resumed stats are suffix-only;
    /// kept for diagnostics).
    pub(crate) barriers: u64,
    /// Linear index (`cy * gx + cx`) of the CTA executing at the snapshot.
    pub(crate) cta: u32,
    /// Thread states of that CTA.
    pub(crate) threads: Vec<ThreadState>,
    /// The CTA's shared memory.
    pub(crate) shared: MemBlock,
    /// Global memory at the snapshot (chunks shared copy-on-write).
    pub(crate) global: MemBlock,
    /// Per-thread retired-instruction counts at the snapshot, grid-wide.
    pub(crate) icnt: Vec<u32>,
}

impl Checkpoint {
    /// Instructions retired grid-wide when the snapshot was taken.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Instructions thread `tid` had retired at the snapshot (0 for
    /// out-of-range ids — such a thread has retired nothing).
    #[must_use]
    pub fn icnt(&self, tid: u32) -> u32 {
        self.icnt.get(tid as usize).copied().unwrap_or(0)
    }

    /// Barrier releases counted up to the snapshot (diagnostics; resumed
    /// run stats are suffix-only).
    #[must_use]
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}
