//! Kernel launch configuration.

use std::sync::Arc;

use fsp_isa::KernelProgram;

/// Default shared-memory size per CTA, in bytes (16 KiB, the Fermi-era
/// default the paper's GPGPU-Sim configuration uses).
pub const DEFAULT_SHARED_BYTES: u32 = 16 * 1024;

/// A kernel launch: program, grid/block geometry and parameters.
///
/// Built in the non-consuming builder style:
///
/// ```
/// use fsp_isa::assemble;
/// use fsp_sim::Launch;
///
/// let program = assemble("k", "exit")?;
/// let launch = Launch::new(program).grid(4, 1).block(256, 1, 1).param(0x1000);
/// assert_eq!(launch.num_threads(), 1024);
/// # Ok::<(), fsp_isa::AsmError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Launch {
    program: Arc<KernelProgram>,
    grid: (u32, u32),
    block: (u32, u32, u32),
    params: Vec<u32>,
    shared_bytes: u32,
    instr_budget: u64,
}

impl Launch {
    /// Creates a launch of `program` with a 1×1 grid of 1×1×1 blocks and no
    /// parameters.
    #[must_use]
    pub fn new(program: impl Into<Arc<KernelProgram>>) -> Self {
        Launch {
            program: program.into(),
            grid: (1, 1),
            block: (1, 1, 1),
            params: Vec::new(),
            shared_bytes: DEFAULT_SHARED_BYTES,
            instr_budget: u64::MAX,
        }
    }

    /// Sets the grid dimensions (CTAs in x and y).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn grid(mut self, x: u32, y: u32) -> Self {
        assert!(x > 0 && y > 0, "grid dimensions must be positive");
        self.grid = (x, y);
        self
    }

    /// Sets the CTA dimensions (threads in x, y, z).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn block(mut self, x: u32, y: u32, z: u32) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "block dimensions must be positive");
        self.block = (x, y, z);
        self
    }

    /// Appends one 32-bit kernel parameter (a buffer address or scalar).
    #[must_use]
    pub fn param(mut self, value: u32) -> Self {
        self.params.push(value);
        self
    }

    /// Appends several parameters at once.
    #[must_use]
    pub fn params(mut self, values: impl IntoIterator<Item = u32>) -> Self {
        self.params.extend(values);
        self
    }

    /// Appends an `f32` parameter (stored as raw bits).
    #[must_use]
    pub fn param_f32(self, value: f32) -> Self {
        self.param(value.to_bits())
    }

    /// Overrides the per-CTA shared memory size in bytes.
    #[must_use]
    pub fn shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes = bytes;
        self
    }

    /// Caps the total number of dynamic instructions the launch may retire;
    /// exceeding it aborts the run with [`crate::SimFault::BudgetExceeded`]
    /// (how injection campaigns detect hangs).
    #[must_use]
    pub fn instr_budget(mut self, budget: u64) -> Self {
        self.instr_budget = budget;
        self
    }

    /// The kernel program.
    #[must_use]
    pub fn program(&self) -> &Arc<KernelProgram> {
        &self.program
    }

    /// Grid dimensions `(x, y)`.
    #[must_use]
    pub fn grid_dim(&self) -> (u32, u32) {
        self.grid
    }

    /// Block dimensions `(x, y, z)`.
    #[must_use]
    pub fn block_dim(&self) -> (u32, u32, u32) {
        self.block
    }

    /// Kernel parameters in declaration order.
    #[must_use]
    pub fn param_values(&self) -> &[u32] {
        &self.params
    }

    /// Shared-memory bytes per CTA.
    #[must_use]
    pub fn shared_size(&self) -> u32 {
        self.shared_bytes
    }

    /// The dynamic-instruction budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.instr_budget
    }

    /// Number of CTAs in the grid.
    #[must_use]
    pub fn num_ctas(&self) -> u32 {
        self.grid.0 * self.grid.1
    }

    /// Threads per CTA.
    #[must_use]
    pub fn threads_per_cta(&self) -> u32 {
        self.block.0 * self.block.1 * self.block.2
    }

    /// Total threads in the grid.
    #[must_use]
    pub fn num_threads(&self) -> u32 {
        self.num_ctas() * self.threads_per_cta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_isa::assemble;

    #[test]
    fn geometry() {
        let p = assemble("k", "exit").unwrap();
        let l = Launch::new(p).grid(6, 6).block(16, 16, 1);
        assert_eq!(l.num_ctas(), 36);
        assert_eq!(l.threads_per_cta(), 256);
        assert_eq!(l.num_threads(), 9216);
    }

    #[test]
    fn params_accumulate() {
        let p = assemble("k", "exit").unwrap();
        let l = Launch::new(p).param(1).params([2, 3]).param_f32(1.0);
        assert_eq!(l.param_values(), &[1, 2, 3, 1.0f32.to_bits()]);
    }

    #[test]
    #[should_panic(expected = "grid dimensions")]
    fn zero_grid_rejected() {
        let p = assemble("k", "exit").unwrap();
        let _ = Launch::new(p).grid(0, 1);
    }
}
