//! The instruction interpreter.

use std::error::Error;
use std::fmt;

use fsp_isa::{
    CmpOp, Dest, Half, MemRef, MemSpace, Opcode, Operand, PredTest, Register, ScalarType,
};

use crate::hook::{ExecHook, MemAccess, RetireEvent, Writeback};
use crate::mem::MemBlock;
use crate::thread::{ThreadState, ThreadStatus};

/// A fatal execution fault.
///
/// Injection campaigns classify any `SimFault` as an *Other* outcome:
/// memory faults are crashes, budget exhaustion is a hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimFault {
    /// Out-of-bounds memory access.
    InvalidAccess {
        /// Address space of the access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u32,
    },
    /// Misaligned memory access.
    Unaligned {
        /// Address space of the access.
        space: MemSpace,
        /// Faulting byte address.
        addr: u32,
    },
    /// The launch exceeded its dynamic-instruction budget (hang detector).
    BudgetExceeded,
    /// A warp executed `bar.sync` while diverged (warp-lockstep mode only)
    /// — undefined behaviour on real SIMT hardware, refused
    /// deterministically here.
    BarrierDivergence {
        /// Program counter of the offending `bar.sync`.
        pc: u32,
    },
    /// A thread executed `trap`: an in-kernel detector (e.g. a DMR
    /// compare inserted by the hardening pass) observed corrupted state
    /// and aborted the launch. Injection campaigns classify this as a
    /// *Detected* outcome, not a crash.
    DetectedExit {
        /// Program counter of the `trap` instruction.
        pc: u32,
    },
}

impl fmt::Display for SimFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimFault::InvalidAccess { space, addr } => {
                write!(f, "invalid {:?} access at {addr:#010x}", space)
            }
            SimFault::Unaligned { space, addr } => {
                write!(f, "unaligned {:?} access at {addr:#010x}", space)
            }
            SimFault::BudgetExceeded => write!(f, "dynamic instruction budget exceeded"),
            SimFault::BarrierDivergence { pc } => {
                write!(f, "bar.sync at pc {pc} executed by a diverged warp")
            }
            SimFault::DetectedExit { pc } => {
                write!(f, "detected-error exit (trap) at pc {pc}")
            }
        }
    }
}

impl Error for SimFault {}

/// What a single step did to the thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepEffect {
    /// Keep running.
    Continue,
    /// Reached `bar.sync`; the thread is now waiting.
    Barrier,
    /// The thread exited.
    Done,
}

/// Per-step log of the memory words an instruction touches, surfaced to
/// hooks through [`RetireEvent::accesses`].
#[derive(Debug)]
pub(crate) struct AccessLog {
    buf: [MemAccess; 6],
    len: usize,
}

impl Default for AccessLog {
    fn default() -> Self {
        AccessLog {
            buf: [MemAccess {
                space: MemSpace::Global,
                addr: 0,
                is_store: false,
                value: 0,
            }; 6],
            len: 0,
        }
    }
}

impl AccessLog {
    fn clear(&mut self) {
        self.len = 0;
    }

    fn push(&mut self, access: MemAccess) {
        // An instruction touches at most 4 words (3 memory sources + one
        // store); the buffer is generously sized, so this never saturates.
        if self.len < self.buf.len() {
            self.buf[self.len] = access;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[MemAccess] {
        &self.buf[..self.len]
    }

    /// Whether the most recent step wrote memory in any address space.
    pub(crate) fn has_store(&self) -> bool {
        self.buf[..self.len].iter().any(|a| a.is_store)
    }
}

/// Per-step log of the processed source-operand values an instruction
/// consumed, surfaced to hooks through [`RetireEvent::srcs`]. Values are
/// recorded after half-word selection and negation, in source-slot order,
/// so a hook can re-evaluate the instruction against substituted inputs
/// (shadow-lane recompute) without re-resolving operands.
#[derive(Debug, Default)]
pub(crate) struct SrcLog {
    buf: [u32; 4],
    len: usize,
}

impl SrcLog {
    fn clear(&mut self) {
        self.len = 0;
    }

    fn push(&mut self, v: u32) {
        // At most 3 sources per instruction (plus slack).
        if self.len < self.buf.len() {
            self.buf[self.len] = v;
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[u32] {
        &self.buf[..self.len]
    }
}

/// Mutable memory context shared by the threads of the running CTA.
pub(crate) struct ExecCtx<'a> {
    pub program: &'a fsp_isa::KernelProgram,
    pub global: &'a mut MemBlock,
    pub shared: &'a mut MemBlock,
    pub accesses: AccessLog,
    pub srcs: SrcLog,
}

impl ExecCtx<'_> {
    fn load(&mut self, thread: &mut ThreadState, m: MemRef) -> Result<u32, SimFault> {
        let addr = self.resolve(thread, m);
        let value = match m.space {
            MemSpace::Global => self.global.load(addr),
            MemSpace::Shared => self.shared.load(addr),
            MemSpace::Local => thread.local_mut().load(addr),
        }?;
        self.accesses.push(MemAccess {
            space: m.space,
            addr,
            is_store: false,
            value,
        });
        Ok(value)
    }

    fn store(&mut self, thread: &mut ThreadState, m: MemRef, value: u32) -> Result<(), SimFault> {
        let addr = self.resolve(thread, m);
        self.accesses.push(MemAccess {
            space: m.space,
            addr,
            is_store: true,
            value,
        });
        match m.space {
            MemSpace::Global => self.global.store(addr, value),
            MemSpace::Shared => self.shared.store(addr, value),
            MemSpace::Local => thread.local_mut().store(addr, value),
        }
    }

    fn resolve(&self, thread: &ThreadState, m: MemRef) -> u32 {
        let base = m.base.map_or(0, |r| read_reg(thread, r));
        base.wrapping_add(m.offset)
    }
}

/// Reads a register (specials come from the thread coordinates; `$r124`
/// reads zero; predicates read their 4 flag bits).
fn read_reg(thread: &ThreadState, reg: Register) -> u32 {
    match reg {
        Register::Gpr(124) => 0,
        Register::Gpr(n) => thread.gprs[n as usize],
        Register::Pred(n) => u32::from(thread.preds[n as usize]),
        Register::Ofs(n) => thread.ofs[n as usize],
        Register::Special(s) => thread.coords.special(s),
        Register::Discard => 0,
    }
}

fn write_reg(thread: &mut ThreadState, reg: Register, value: u32) {
    match reg {
        Register::Gpr(124) | Register::Discard | Register::Special(_) => {}
        Register::Gpr(n) => thread.gprs[n as usize] = value,
        Register::Pred(n) => thread.preds[n as usize] = (value & 0xF) as u8,
        Register::Ofs(n) => thread.ofs[n as usize] = value,
    }
}

/// Evaluates a predicate test against a 4-bit condition-code word
/// (zero = bit 0, sign = bit 1).
#[must_use]
pub fn pred_test(flags: u8, test: PredTest) -> bool {
    let zero = flags & 0b0001 != 0;
    let sign = flags & 0b0010 != 0;
    match test {
        PredTest::Eq => zero,
        PredTest::Ne => !zero,
        PredTest::Lt => sign,
        PredTest::Ge => !sign,
        PredTest::Le => zero || sign,
        PredTest::Gt => !zero && !sign,
    }
}

/// Evaluates a guard against a predicate register's condition codes.
fn guard_passes(thread: &ThreadState, pred: u8, test: PredTest) -> bool {
    pred_test(thread.preds[pred as usize], test)
}

/// Condition-code flags derived from a result value.
#[must_use]
pub fn flags_of(value: u32, ty: ScalarType, carry: bool, overflow: bool) -> u32 {
    let zero = value == 0;
    let sign = if ty.is_float() {
        f32::from_bits(value) < 0.0
    } else {
        (value as i32) < 0
    };
    u32::from(zero) | (u32::from(sign) << 1) | (u32::from(carry) << 2) | (u32::from(overflow) << 3)
}

/// Applies half-word selection and negation to a raw register word —
/// the processing [`operand_value`] performs on register operands. Public
/// so shadow-lane recompute can re-process a substituted raw value.
#[must_use]
pub fn apply_half_neg(raw: u32, half: Option<Half>, neg: bool, ty: ScalarType) -> u32 {
    let mut v = raw;
    match half {
        Some(Half::Lo) => v &= 0xFFFF,
        Some(Half::Hi) => v >>= 16,
        None => {}
    }
    if neg {
        v = negate(v, ty);
    }
    v
}

/// Fetches an operand value, applying half-word selection and negation,
/// and logs the processed value in [`ExecCtx::srcs`].
fn operand_value(
    thread: &mut ThreadState,
    ctx: &mut ExecCtx<'_>,
    op: &Operand,
    ty: ScalarType,
) -> Result<u32, SimFault> {
    let v = match op {
        Operand::Reg { reg, half, neg } => apply_half_neg(read_reg(thread, *reg), *half, *neg, ty),
        Operand::Imm(v) => *v,
        Operand::Mem(m) => ctx.load(thread, *m)?,
    };
    ctx.srcs.push(v);
    Ok(v)
}

fn negate(v: u32, ty: ScalarType) -> u32 {
    if ty.is_float() {
        v ^ 0x8000_0000
    } else {
        v.wrapping_neg()
    }
}

/// Sign- or zero-extends a 16-bit source for `wide` arithmetic.
fn widen(v: u32, ty: ScalarType) -> i64 {
    if ty.is_signed() {
        i64::from(v as u16 as i16)
    } else {
        i64::from(v as u16)
    }
}

fn compare(a: u32, b: u32, cmp: CmpOp, ty: ScalarType) -> bool {
    if ty.is_float() {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else if ty.is_signed() {
        let (x, y) = (a as i32, b as i32);
        match cmp {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        match cmp {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

fn convert(v: u32, from: ScalarType, to: ScalarType) -> u32 {
    use ScalarType as T;
    // Normalize the source to a wide signed/float value, then narrow.
    match (from, to) {
        (T::F32, T::F32) => v,
        (T::F32, t) => {
            let f = f32::from_bits(v);
            if t.is_signed() {
                let x = f as i32; // saturating in Rust
                mask(x as u32, t)
            } else {
                mask(f as u32, t)
            }
        }
        (f, T::F32) => {
            let x = int_value(v, f);
            #[allow(clippy::cast_precision_loss)]
            (x as f32).to_bits()
        }
        (f, t) => mask(int_value(v, f) as u32, t),
    }
}

/// Interprets raw bits as a signed 64-bit integer per `ty`.
fn int_value(v: u32, ty: ScalarType) -> i64 {
    use ScalarType as T;
    match ty {
        T::U16 => i64::from(v as u16),
        T::S16 => i64::from(v as u16 as i16),
        T::S32 => i64::from(v as i32),
        _ => i64::from(v),
    }
}

fn mask(v: u32, ty: ScalarType) -> u32 {
    match ty.bits() {
        16 => v & 0xFFFF,
        4 => v & 0xF,
        _ => v,
    }
}

/// The scalar type governing half/neg processing of source slot `slot`.
#[must_use]
pub fn operand_ty(instr: &fsp_isa::Instruction, slot: usize) -> ScalarType {
    match instr.opcode {
        Opcode::Cvt | Opcode::Set => instr.src_ty,
        Opcode::Mad if instr.wide && slot == 2 => ScalarType::U32,
        _ => instr.ty,
    }
}

/// Number of source values a value-producing opcode consumes (the length
/// of [`RetireEvent::srcs`] for its retirement).
fn src_count(op: Opcode) -> usize {
    match op {
        Opcode::Mov
        | Opcode::Ld
        | Opcode::Cvt
        | Opcode::Abs
        | Opcode::Neg
        | Opcode::Rcp
        | Opcode::Sqrt
        | Opcode::Rsqrt
        | Opcode::Ex2
        | Opcode::Lg2
        | Opcode::Not => 1,
        Opcode::Mad | Opcode::Selp => 3,
        _ => 2,
    }
}

/// Evaluates a value-producing instruction over already-processed source
/// values (`RetireEvent::srcs` order), returning `(value, carry, overflow)`.
///
/// This is the single evaluator [`step`] itself commits through, so a hook
/// re-running it over substituted sources (shadow-lane recompute) gets
/// bit-identical semantics by construction. `Selp` expects the raw 4-bit
/// flags of its predicate operand in slot 2.
///
/// # Panics
/// On control opcodes and `st`, which produce no register result.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn eval_op(instr: &fsp_isa::Instruction, s: &[u32]) -> (u32, bool, bool) {
    let ty = instr.ty;
    match instr.opcode {
        Opcode::Mov | Opcode::Ld => (mask(s[0], ty), false, false),
        Opcode::Cvt => (convert(s[0], instr.src_ty, ty), false, false),
        Opcode::Add | Opcode::Sub => {
            let (a, b) = (s[0], s[1]);
            if ty.is_float() {
                let (x, y) = (f32::from_bits(a), f32::from_bits(b));
                let r = if instr.opcode == Opcode::Add {
                    x + y
                } else {
                    x - y
                };
                (r.to_bits(), false, false)
            } else if instr.opcode == Opcode::Add {
                let (r, carry) = a.overflowing_add(b);
                let (_, overflow) = (a as i32).overflowing_add(b as i32);
                (mask(r, ty), carry, overflow)
            } else {
                let (r, borrow) = a.overflowing_sub(b);
                let (_, overflow) = (a as i32).overflowing_sub(b as i32);
                (mask(r, ty), borrow, overflow)
            }
        }
        Opcode::Mul | Opcode::Mad => {
            let (a, b) = (s[0], s[1]);
            let prod: u32 = if ty.is_float() {
                (f32::from_bits(a) * f32::from_bits(b)).to_bits()
            } else if instr.wide {
                (widen(a, ty).wrapping_mul(widen(b, ty))) as u32
            } else if instr.hi {
                if ty.is_signed() {
                    ((i64::from(a as i32).wrapping_mul(i64::from(b as i32))) >> 32) as u32
                } else {
                    ((u64::from(a).wrapping_mul(u64::from(b))) >> 32) as u32
                }
            } else {
                mask(a.wrapping_mul(b), ty)
            };
            let v = if instr.opcode == Opcode::Mad {
                let c = s[2];
                if ty.is_float() {
                    (f32::from_bits(prod) + f32::from_bits(c)).to_bits()
                } else if instr.wide {
                    prod.wrapping_add(c)
                } else {
                    mask(prod.wrapping_add(c), ty)
                }
            } else {
                prod
            };
            (v, false, false)
        }
        Opcode::Div | Opcode::Rem => {
            let (a, b) = (s[0], s[1]);
            let v = if ty.is_float() {
                (f32::from_bits(a) / f32::from_bits(b)).to_bits()
            } else if b == 0 {
                // CUDA integer division by zero produces all-ones, not a trap.
                if instr.opcode == Opcode::Div {
                    u32::MAX
                } else {
                    a
                }
            } else if ty.is_signed() {
                let (x, y) = (a as i32, b as i32);
                let r = if instr.opcode == Opcode::Div {
                    x.wrapping_div(y)
                } else {
                    x.wrapping_rem(y)
                };
                mask(r as u32, ty)
            } else {
                mask(
                    if instr.opcode == Opcode::Div {
                        a / b
                    } else {
                        a % b
                    },
                    ty,
                )
            };
            (v, false, false)
        }
        Opcode::Min | Opcode::Max => {
            let (a, b) = (s[0], s[1]);
            let take_a = if instr.opcode == Opcode::Min {
                compare(a, b, CmpOp::Le, ty)
            } else {
                compare(a, b, CmpOp::Ge, ty)
            };
            (if take_a { a } else { b }, false, false)
        }
        Opcode::Abs => {
            let a = s[0];
            let v = if ty.is_float() {
                a & 0x7FFF_FFFF
            } else {
                mask((a as i32).wrapping_abs() as u32, ty)
            };
            (v, false, false)
        }
        Opcode::Neg => (mask(negate(s[0], ty), ty), false, false),
        Opcode::Rcp | Opcode::Sqrt | Opcode::Rsqrt | Opcode::Ex2 | Opcode::Lg2 => {
            let x = f32::from_bits(s[0]);
            let r = match instr.opcode {
                Opcode::Rcp => 1.0 / x,
                Opcode::Sqrt => x.sqrt(),
                Opcode::Rsqrt => 1.0 / x.sqrt(),
                Opcode::Ex2 => x.exp2(),
                Opcode::Lg2 => x.log2(),
                _ => unreachable!(),
            };
            (r.to_bits(), false, false)
        }
        Opcode::And | Opcode::Or | Opcode::Xor => {
            let (a, b) = (s[0], s[1]);
            let v = match instr.opcode {
                Opcode::And => a & b,
                Opcode::Or => a | b,
                Opcode::Xor => a ^ b,
                _ => unreachable!(),
            };
            (mask(v, ty), false, false)
        }
        Opcode::Not => (mask(!s[0], ty), false, false),
        Opcode::Shl | Opcode::Shr => {
            let (a, amt) = (s[0], s[1]);
            let v = if amt >= 32 {
                match (instr.opcode, ty.is_signed(), (a as i32) < 0) {
                    (Opcode::Shr, true, true) => u32::MAX,
                    _ => 0,
                }
            } else if instr.opcode == Opcode::Shl {
                a.wrapping_shl(amt)
            } else if ty.is_signed() {
                ((a as i32) >> amt) as u32
            } else {
                a >> amt
            };
            (mask(v, ty), false, false)
        }
        Opcode::Set => {
            let hit = compare(
                s[0],
                s[1],
                instr.cmp.expect("assembler enforces set.cmp"),
                instr.src_ty,
            );
            let v = if ty.is_float() {
                if hit {
                    1.0f32.to_bits()
                } else {
                    0
                }
            } else if hit {
                mask(u32::MAX, ty)
            } else {
                0
            };
            (v, false, false)
        }
        Opcode::Selp => {
            let test = match instr.cmp {
                Some(CmpOp::Eq) => PredTest::Eq,
                Some(CmpOp::Lt) => PredTest::Lt,
                Some(CmpOp::Le) => PredTest::Le,
                Some(CmpOp::Gt) => PredTest::Gt,
                Some(CmpOp::Ge) => PredTest::Ge,
                _ => PredTest::Ne,
            };
            (
                if pred_test(s[2] as u8, test) {
                    s[0]
                } else {
                    s[1]
                },
                false,
                false,
            )
        }
        Opcode::Nop
        | Opcode::Ssy
        | Opcode::Bra
        | Opcode::Bar
        | Opcode::Ret
        | Opcode::Retp
        | Opcode::Exit
        | Opcode::Trap
        | Opcode::St => unreachable!("eval_op on a non-value opcode"),
    }
}

/// Executes one instruction of `thread`.
///
/// `budget` counts down per retirement; hitting zero aborts with
/// [`SimFault::BudgetExceeded`].
pub(crate) fn step<H: ExecHook>(
    thread: &mut ThreadState,
    ctx: &mut ExecCtx<'_>,
    hook: &mut H,
    budget: &mut u64,
) -> Result<StepEffect, SimFault> {
    let Some(instr) = ctx.program.get(thread.pc) else {
        // Falling off the end is an implicit return.
        thread.status = ThreadStatus::Done;
        return Ok(StepEffect::Done);
    };
    if let Some(g) = &instr.guard {
        if !guard_passes(thread, g.pred, g.test) {
            hook.on_guard_fail(thread.coords.flat_tid(), g.pred, g.test);
            thread.pc += 1;
            return Ok(StepEffect::Continue);
        }
    }
    ctx.accesses.clear();
    ctx.srcs.clear();
    if *budget == 0 {
        return Err(SimFault::BudgetExceeded);
    }
    *budget -= 1;

    let pc = thread.pc;
    let mut next_pc = pc + 1;
    let mut effect = StepEffect::Continue;
    // (value, carry, overflow) produced by the operation, if any.
    let mut result: Option<(u32, bool, bool)> = None;

    let ty = instr.ty;
    match instr.opcode {
        Opcode::Nop
        | Opcode::Ssy
        | Opcode::Bra
        | Opcode::Bar
        | Opcode::Ret
        | Opcode::Retp
        | Opcode::Exit
        | Opcode::Trap => match instr.opcode {
            Opcode::Bra => {
                next_pc = instr.target.expect("assembler resolves branch targets");
            }
            Opcode::Bar => {
                thread.status = ThreadStatus::AtBarrier;
                effect = StepEffect::Barrier;
            }
            Opcode::Ret | Opcode::Retp | Opcode::Exit => {
                thread.status = ThreadStatus::Done;
                effect = StepEffect::Done;
            }
            Opcode::Trap => {
                return Err(SimFault::DetectedExit { pc: pc as u32 });
            }
            _ => {}
        },
        Opcode::St => {
            let v = operand_value(
                thread,
                ctx,
                instr.src[0].as_ref().expect("st needs a source"),
                ty,
            )?;
            let Some(Dest::Mem(m)) = instr.dst[0] else {
                unreachable!("assembler guarantees st has a memory destination");
            };
            ctx.store(thread, m, v)?;
        }
        _ => {
            for i in 0..src_count(instr.opcode) {
                if instr.opcode == Opcode::Selp && i == 2 {
                    // `selp` steers on raw predicate flags, not a fetched
                    // operand; log them so `eval_op` (and shadow-lane
                    // recompute) sees them in slot 2.
                    let Some(Operand::Reg {
                        reg: Register::Pred(p),
                        ..
                    }) = instr.src[2]
                    else {
                        panic!("selp requires a predicate third operand");
                    };
                    ctx.srcs.push(u32::from(thread.preds[p as usize]));
                } else {
                    let op = instr.src[i].as_ref().expect("missing source operand");
                    operand_value(thread, ctx, op, operand_ty(instr, i))?;
                }
            }
            result = Some(eval_op(instr, ctx.srcs.as_slice()));
        }
    }

    // Commit destinations through the write-back hook.
    if let Some((value, carry, overflow)) = result {
        let dyn_idx = thread.icnt;
        let tid = thread.coords.flat_tid();
        for (slot, dest) in instr.dst.iter().enumerate() {
            match dest {
                Some(Dest::Reg(reg)) if !reg.is_discard() => {
                    let commit = match reg {
                        Register::Pred(_) => flags_of(value, ty, carry, overflow),
                        _ => value,
                    };
                    let width = instr.register_dest_bits(*reg);
                    let wb = Writeback {
                        tid,
                        dyn_idx,
                        pc,
                        slot: slot as u8,
                        reg: *reg,
                        value: commit,
                        width,
                    };
                    let final_value = hook.writeback(&wb).unwrap_or(commit);
                    write_reg(thread, *reg, final_value);
                }
                Some(Dest::Mem(m)) => {
                    // `mov.u32 s[...], $r2` style store-through-mov.
                    ctx.store(thread, *m, value)?;
                }
                _ => {}
            }
        }
    }

    hook.on_retire(RetireEvent {
        tid: thread.coords.flat_tid(),
        dyn_idx: thread.icnt,
        pc,
        instr,
        accesses: ctx.accesses.as_slice(),
        srcs: ctx.srcs.as_slice(),
    });
    thread.icnt += 1;
    thread.pc = next_pc;
    Ok(effect)
}
