//! Warp-lockstep SIMT execution with a divergence (reconvergence) stack —
//! the execution model GPGPU-Sim uses for PTXPlus.
//!
//! Threads of a warp share one program counter. On a divergent branch the
//! warp splits: the current stack entry parks at the branch's
//! *reconvergence pc* (the immediate post-dominator, which GPGPU-Sim
//! derives from `ssy` annotations and this implementation derives from the
//! CFG), and one entry per distinct successor pc is pushed. The top of the
//! stack always executes; an entry whose pc reaches its reconvergence pc
//! pops, re-joining the threads below.
//!
//! For the well-synchronized kernels the paper evaluates, warp-lockstep
//! execution is *functionally identical* to the default thread-serial
//! schedule (the cross-validation test in `tests/warp_equivalence.rs`
//! checks every workload); it exists to demonstrate the fidelity of the
//! substrate and to catch kernels that would misbehave on real SIMT
//! hardware — executing `bar.sync` while the warp is diverged raises
//! [`SimFault::BarrierDivergence`], which on silicon would be undefined
//! behaviour.

use std::collections::BTreeMap;

use fsp_isa::Opcode;

use crate::exec::{step, ExecCtx, SimFault};
use crate::hook::ExecHook;
use crate::thread::{ThreadState, ThreadStatus};

/// A reconvergence-stack entry: a set of warp lanes executing together at
/// `pc` until they reach `rpc`.
#[derive(Debug, Clone)]
struct StackEntry {
    /// Shared program counter of the entry's live lanes.
    pc: usize,
    /// Reconvergence pc: pop when `pc` reaches it (`None` = only at thread
    /// exit).
    rpc: Option<usize>,
    /// Thread indices (into the CTA thread slice) covered by this entry.
    members: Vec<usize>,
}

/// The divergence stack of one warp.
#[derive(Debug, Clone)]
pub(crate) struct WarpStack {
    stack: Vec<StackEntry>,
}

/// What stopped a warp's execution slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarpEffect {
    /// All lanes exited.
    Done,
    /// The warp is parked at a barrier.
    AtBarrier,
}

impl WarpStack {
    /// A fresh warp over the given thread indices, starting at pc 0.
    pub(crate) fn new(members: Vec<usize>) -> Self {
        WarpStack {
            stack: vec![StackEntry {
                pc: 0,
                rpc: None,
                members,
            }],
        }
    }

    /// Runs the warp until every lane exits or parks at a barrier.
    ///
    /// `rpcs` is the per-pc reconvergence table (precomputed once per
    /// launch from the CFG's post-dominators).
    pub(crate) fn run<H: ExecHook>(
        &mut self,
        threads: &mut [ThreadState],
        ctx: &mut ExecCtx<'_>,
        hook: &mut H,
        budget: &mut u64,
        rpcs: &[Option<usize>],
    ) -> Result<WarpEffect, SimFault> {
        loop {
            let Some(top) = self.stack.last() else {
                return Ok(WarpEffect::Done);
            };
            // Live lanes of the top entry.
            let active: Vec<usize> = top
                .members
                .iter()
                .copied()
                .filter(|&t| threads[t].status == ThreadStatus::Ready)
                .collect();
            if active.is_empty() {
                // All lanes of this entry exited or are parked; if any are
                // parked at a barrier the whole warp waits (they can only
                // be parked at stack depth 1 — enforced below).
                if top
                    .members
                    .iter()
                    .any(|&t| threads[t].status == ThreadStatus::AtBarrier)
                {
                    return Ok(WarpEffect::AtBarrier);
                }
                self.stack.pop();
                continue;
            }
            let pc = top.pc;
            if top.rpc == Some(pc) {
                self.stack.pop();
                continue;
            }
            debug_assert!(
                active.iter().all(|&t| threads[t].pc == pc),
                "lockstep invariant: every active lane sits at the entry pc"
            );
            // Divergent barriers are UB on hardware; refuse deterministically.
            if ctx.program.get(pc).is_some_and(|i| i.opcode == Opcode::Bar) && self.stack.len() > 1
            {
                return Err(SimFault::BarrierDivergence { pc: pc as u32 });
            }
            for &t in &active {
                step(&mut threads[t], ctx, hook, budget)?;
            }
            // Regroup by where the lanes went.
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            let mut any_barrier = false;
            for &t in &active {
                match threads[t].status {
                    ThreadStatus::Ready => {
                        groups.entry(threads[t].pc).or_default().push(t);
                    }
                    ThreadStatus::AtBarrier => any_barrier = true,
                    ThreadStatus::Done => {}
                }
            }
            let top = self.stack.last_mut().expect("entry still on stack");
            if any_barrier {
                // `bar.sync` executes for the whole active set at once.
                top.pc = pc + 1;
                return Ok(WarpEffect::AtBarrier);
            }
            match groups.len() {
                0 => { /* every lane exited; next iteration pops */ }
                1 => {
                    top.pc = *groups.keys().next().expect("one group");
                }
                _ => {
                    // Divergence: park this entry at the reconvergence pc
                    // and push one entry per successor, lowest pc on top so
                    // fall-through paths run first (deterministic; any
                    // order is functionally equivalent for race-free code).
                    let rpc = rpcs.get(pc).copied().flatten();
                    top.pc = rpc.unwrap_or(usize::MAX);
                    let mut split: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
                    split.sort_by_key(|&(pc, _)| std::cmp::Reverse(pc));
                    for (gpc, members) in split {
                        self.stack.push(StackEntry {
                            pc: gpc,
                            rpc,
                            members,
                        });
                    }
                }
            }
        }
    }
}
