//! Golden value traces: per-thread commit logs of the fault-free run.
//!
//! The checkpoint-resume fast path classifies an injection as Masked the
//! moment its *divergence set* — the registers and memory words whose
//! values differ from the fault-free run at the same retirement point —
//! becomes empty. Deciding membership requires the fault-free values, so
//! [`Experiment::prepare`] records one [`GoldenTrace`] alongside the
//! dynamic-instruction trace: for every thread, the PC stream, every
//! committed register write-back and every store, in retirement order.
//!
//! Because the simulator is deterministic and threads only interact at
//! barrier-phase boundaries (CTAs run serially), a faulty run whose
//! per-thread PC streams stay aligned with the golden run can be compared
//! *positionally*: the value committed by thread `t`'s `k`-th retirement
//! is directly comparable to the golden value at the same `(t, k, slot)`
//! coordinate, with no cursor state in the tracker. The index structures
//! here (`wb_end` / `st_end` prefix-sum arrays) exist to make that random
//! access O(1), which in turn lets checkpoint-resumed runs — which start
//! mid-stream at an arbitrary `dyn_idx` — share the same trace.
//!
//! [`Experiment::prepare`]: ../../fsp_inject/campaign/struct.Experiment.html

use fsp_isa::MemSpace;

use crate::hook::{ExecHook, RetireEvent, Writeback};

/// One store committed by the golden run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenStore {
    /// Address space written.
    pub space: MemSpace,
    /// Resolved byte address.
    pub addr: u32,
    /// The word stored.
    pub value: u32,
}

/// The fault-free commit log of a single thread.
#[derive(Debug, Clone, Default)]
pub struct GoldenThread {
    /// PC of the `k`-th retired instruction.
    pcs: Vec<u32>,
    /// Exclusive prefix-sum: write-backs committed by retirements `0..=k`.
    wb_end: Vec<u32>,
    /// Exclusive prefix-sum: stores committed by retirements `0..=k`.
    st_end: Vec<u32>,
    /// All committed register values, in (retirement, slot) order.
    values: Vec<u32>,
    /// All committed stores, in retirement order.
    stores: Vec<GoldenStore>,
}

impl GoldenThread {
    /// Number of instructions the thread retired in the golden run.
    #[must_use]
    pub fn retirements(&self) -> u32 {
        self.pcs.len() as u32
    }

    /// PC of the `k`-th retirement, or `None` past the end of the stream.
    #[must_use]
    pub fn pc(&self, k: u32) -> Option<u32> {
        self.pcs.get(k as usize).copied()
    }

    /// Index into the value log of the `k`-th retirement's slot-0
    /// write-back (valid for `k <= retirements()`).
    #[must_use]
    pub fn wb_index(&self, k: u32) -> u32 {
        if k == 0 {
            0
        } else {
            self.wb_end[k as usize - 1]
        }
    }

    /// Index into the store log of the `k`-th retirement's store (valid
    /// for `k <= retirements()`).
    #[must_use]
    pub fn store_index(&self, k: u32) -> u32 {
        if k == 0 {
            0
        } else {
            self.st_end[k as usize - 1]
        }
    }

    /// The committed register value at `idx` (see [`Self::wb_index`]).
    #[must_use]
    pub fn value(&self, idx: u32) -> Option<u32> {
        self.values.get(idx as usize).copied()
    }

    /// The committed store at `idx` (see [`Self::store_index`]).
    #[must_use]
    pub fn store(&self, idx: u32) -> Option<GoldenStore> {
        self.stores.get(idx as usize).copied()
    }
}

/// Grid-wide profile of the golden run's stores to one global word.
///
/// Built by [`GoldenTrace::global_write_profile`]; the early-convergence
/// tracker uses it to prove that a divergent output word can never be
/// restored (no golden store to it remains in the schedule's future) and
/// stop tracking the run on the spot.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalWriteStats {
    /// Total golden stores to the word, grid-wide.
    pub count: u32,
    /// Last CTA (serial launch order) whose threads store the word.
    pub last_cta: u32,
}

/// Grid-wide global-store profile: one [`GlobalWriteStats`] per global
/// word the golden run stores, held as a sorted vector keyed by address.
/// Lookup is a branch-free binary search — this is probed on the
/// per-instruction comparison path of the injection fast paths, where the
/// previous `HashMap` paid a SipHash per divergent store.
#[derive(Debug, Clone, Default)]
pub struct GlobalWriteProfile {
    entries: Vec<(u32, GlobalWriteStats)>,
}

impl GlobalWriteProfile {
    /// The profile of global word `addr`, or `None` if the golden run
    /// never stores it.
    #[must_use]
    pub fn get(&self, addr: u32) -> Option<&GlobalWriteStats> {
        self.entries
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Number of distinct global words stored by the golden run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the golden run stores no global words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(addr, stats)` pairs in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &GlobalWriteStats)> {
        self.entries.iter().map(|(a, s)| (*a, s))
    }
}

/// Per-thread fault-free commit logs for a whole launch.
#[derive(Debug, Clone, Default)]
pub struct GoldenTrace {
    threads: Vec<GoldenThread>,
}

impl GoldenTrace {
    /// Profiles every global word the golden run stores: how many times
    /// grid-wide and the last CTA to do so. Words absent from the profile
    /// are never stored by the fault-free run.
    #[must_use]
    pub fn global_write_profile(&self, threads_per_cta: u32) -> GlobalWriteProfile {
        let tpc = threads_per_cta.max(1);
        let mut map = std::collections::BTreeMap::new();
        for (tid, t) in self.threads.iter().enumerate() {
            let cta = tid as u32 / tpc;
            for s in t.stores.iter().filter(|s| s.space == MemSpace::Global) {
                let e: &mut GlobalWriteStats = map.entry(s.addr).or_default();
                e.count += 1;
                e.last_cta = e.last_cta.max(cta);
            }
        }
        GlobalWriteProfile {
            entries: map.into_iter().collect(),
        }
    }

    /// The commit log of flat thread `tid`, if it is in range.
    #[must_use]
    pub fn thread(&self, tid: u32) -> Option<&GoldenThread> {
        self.threads.get(tid as usize)
    }

    /// Number of threads in the recorded launch.
    #[must_use]
    pub fn num_threads(&self) -> u32 {
        self.threads.len() as u32
    }

    /// Total committed register values across all threads (memory sizing).
    #[must_use]
    pub fn total_values(&self) -> usize {
        self.threads.iter().map(|t| t.values.len()).sum()
    }
}

/// Hook that records a [`GoldenTrace`] during a fault-free run.
///
/// Must be composed so that no other hook overrides write-back values
/// (the recorder logs `wb.value` as the committed value).
#[derive(Debug, Clone)]
pub struct GoldenRecorder {
    threads: Vec<GoldenThread>,
}

impl GoldenRecorder {
    /// A recorder for a launch of `num_threads` flat threads.
    #[must_use]
    pub fn new(num_threads: u32) -> Self {
        GoldenRecorder {
            threads: vec![GoldenThread::default(); num_threads as usize],
        }
    }

    /// Finalizes the recording.
    #[must_use]
    pub fn finish(self) -> GoldenTrace {
        GoldenTrace {
            threads: self.threads,
        }
    }
}

impl ExecHook for GoldenRecorder {
    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        let t = &mut self.threads[wb.tid as usize];
        debug_assert_eq!(
            t.values.len() as u32,
            t.wb_index(wb.dyn_idx) + u32::from(wb.slot),
            "write-back out of retirement order"
        );
        t.values.push(wb.value);
        None
    }

    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        let t = &mut self.threads[ev.tid as usize];
        debug_assert_eq!(t.pcs.len() as u32, ev.dyn_idx, "retirement gap");
        for a in ev.accesses.iter().filter(|a| a.is_store) {
            t.stores.push(GoldenStore {
                space: a.space,
                addr: a.addr,
                value: a.value,
            });
        }
        t.pcs.push(ev.pc as u32);
        t.wb_end.push(t.values.len() as u32);
        t.st_end.push(t.stores.len() as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Launch, MemBlock, Simulator};
    use fsp_isa::assemble;

    fn trace_of(src: &str, block: u32) -> GoldenTrace {
        let program = assemble("golden_test", src).expect("assembles");
        let launch = Launch::new(program).grid(1, 1).block(block, 1, 1);
        let mut memory = MemBlock::with_words(64);
        let mut rec = GoldenRecorder::new(launch.num_threads());
        Simulator::new()
            .run(&launch, &mut memory, &mut rec)
            .expect("golden run");
        rec.finish()
    }

    #[test]
    fn records_pc_value_and_store_streams() {
        let trace = trace_of(
            r#"
            mov.u32 $r1, 0x7
            add.u32 $r1, $r1, 0x3
            st.global.u32 [0x4], $r1
            exit
            "#,
            1,
        );
        let t = trace.thread(0).expect("thread 0");
        assert_eq!(t.retirements(), 4);
        assert_eq!(t.pc(0), Some(0));
        assert_eq!(t.pc(3), Some(3));
        assert_eq!(t.pc(4), None);
        // Retirements 0 and 1 each committed one write-back.
        assert_eq!(t.wb_index(0), 0);
        assert_eq!(t.wb_index(1), 1);
        assert_eq!(t.value(t.wb_index(0)), Some(7));
        assert_eq!(t.value(t.wb_index(1)), Some(10));
        // The store retired third.
        assert_eq!(t.store_index(2), 0);
        assert_eq!(t.store_index(3), 1);
        assert_eq!(
            t.store(0),
            Some(GoldenStore {
                space: MemSpace::Global,
                addr: 4,
                value: 10
            })
        );
    }

    #[test]
    fn per_thread_streams_are_independent() {
        let trace = trace_of(
            r#"
            cvt.u32.u16 $r1, %tid.x
            shl.u32 $r2, $r1, 0x2
            st.global.u32 [$r2], $r1
            exit
            "#,
            4,
        );
        for tid in 0..4 {
            let t = trace.thread(tid).expect("thread");
            assert_eq!(t.retirements(), 4);
            assert_eq!(t.value(t.wb_index(0)), Some(tid));
            let s = t.store(0).expect("store");
            assert_eq!((s.addr, s.value), (tid * 4, tid));
        }
        assert!(trace.thread(4).is_none());
    }
}
