//! Execution hooks: the attachment point for tracing and fault injection.

use fsp_isa::{Instruction, MemSpace, PredTest, Register};

/// One memory word touched by a retiring instruction.
///
/// Reported through [`RetireEvent::accesses`] in operand order (loads as
/// the sources are fetched, then the store, if any), so divergence-tracking
/// hooks can follow corrupted values through memory without re-decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Address space of the access.
    pub space: MemSpace,
    /// Resolved byte address.
    pub addr: u32,
    /// `true` for a store, `false` for a load.
    pub is_store: bool,
    /// The word transferred: the value read for a load, the value
    /// committed for a store.
    pub value: u32,
}

/// An executed ("retired") instruction, reported once per guard-passing
/// dynamic instruction.
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent<'a> {
    /// Grid-wide flat thread id.
    pub tid: u32,
    /// 0-based dynamic instruction index within the thread.
    pub dyn_idx: u32,
    /// Static instruction index (program counter).
    pub pc: usize,
    /// The instruction.
    pub instr: &'a Instruction,
    /// Memory words the instruction touched, in operand order.
    pub accesses: &'a [MemAccess],
    /// Processed source-operand values (after half-word selection and
    /// negation), in source-slot order. For `selp`, slot 2 holds the raw
    /// 4-bit flags of the steering predicate. Empty for control
    /// instructions. Feeding these to [`crate::eval_op`] reproduces the
    /// committed result bit-for-bit.
    pub srcs: &'a [u32],
}

/// A register write-back about to be committed.
#[derive(Debug, Clone, Copy)]
pub struct Writeback {
    /// Grid-wide flat thread id.
    pub tid: u32,
    /// 0-based dynamic instruction index within the thread.
    pub dyn_idx: u32,
    /// Static instruction index.
    pub pc: usize,
    /// Destination slot (0 or 1; `set.eq $p0/$r1` writes two).
    pub slot: u8,
    /// Destination register.
    pub reg: Register,
    /// The value the instruction produced (4-bit flags for predicate
    /// registers, right-aligned).
    pub value: u32,
    /// Fault-site width of this destination in bits (4 for predicates,
    /// 16/32 for general-purpose registers).
    pub width: u32,
}

/// Observer/interceptor of kernel execution.
///
/// `on_retire` fires once per executed instruction; `writeback` fires once
/// per destination-register write and may override the committed value —
/// returning `Some(v)` commits `v` instead. A single-bit fault injection is
/// `Some(value ^ (1 << bit))`.
///
/// Instructions whose guard fails do not retire and do not write back,
/// matching the paper's fault-site definition (a site is a bit of a
/// destination register that is actually written); they are reported via
/// `on_guard_fail` instead, so divergence trackers can tell whether a
/// corrupted predicate steered control flow.
pub trait ExecHook {
    /// Called after an instruction retires (all write-backs committed).
    #[inline]
    fn on_retire(&mut self, _ev: RetireEvent<'_>) {}

    /// Called before a destination-register write commits; may override the
    /// value.
    #[inline]
    fn writeback(&mut self, _wb: &Writeback) -> Option<u32> {
        None
    }

    /// Called when an instruction's guard fails (the instruction does not
    /// retire). `pred` is the guard's predicate register number and `test`
    /// the condition it evaluated, so shadow-lane trackers can re-evaluate
    /// the guard against a lane's diverged flags.
    #[inline]
    fn on_guard_fail(&mut self, _tid: u32, _pred: u8, _test: PredTest) {}

    /// Polled between steps (thread-serial schedule only): returning `true`
    /// stops the run early with whatever state has accumulated. Injection
    /// fast paths use this to cut a run short once the fault provably can
    /// no longer change the outcome.
    #[inline]
    fn converged(&self) -> bool {
        false
    }
}

/// The do-nothing hook (fault-free, untraced execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NopHook;

impl ExecHook for NopHook {}

impl<H: ExecHook + ?Sized> ExecHook for &mut H {
    #[inline]
    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        (**self).on_retire(ev);
    }

    #[inline]
    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        (**self).writeback(wb)
    }

    #[inline]
    fn on_guard_fail(&mut self, tid: u32, pred: u8, test: PredTest) {
        (**self).on_guard_fail(tid, pred, test);
    }

    #[inline]
    fn converged(&self) -> bool {
        (**self).converged()
    }
}
