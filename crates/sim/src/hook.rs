//! Execution hooks: the attachment point for tracing and fault injection.

use fsp_isa::{Instruction, Register};

/// An executed ("retired") instruction, reported once per guard-passing
/// dynamic instruction.
#[derive(Debug, Clone, Copy)]
pub struct RetireEvent<'a> {
    /// Grid-wide flat thread id.
    pub tid: u32,
    /// 0-based dynamic instruction index within the thread.
    pub dyn_idx: u32,
    /// Static instruction index (program counter).
    pub pc: usize,
    /// The instruction.
    pub instr: &'a Instruction,
}

/// A register write-back about to be committed.
#[derive(Debug, Clone, Copy)]
pub struct Writeback {
    /// Grid-wide flat thread id.
    pub tid: u32,
    /// 0-based dynamic instruction index within the thread.
    pub dyn_idx: u32,
    /// Static instruction index.
    pub pc: usize,
    /// Destination slot (0 or 1; `set.eq $p0/$r1` writes two).
    pub slot: u8,
    /// Destination register.
    pub reg: Register,
    /// The value the instruction produced (4-bit flags for predicate
    /// registers, right-aligned).
    pub value: u32,
    /// Fault-site width of this destination in bits (4 for predicates,
    /// 16/32 for general-purpose registers).
    pub width: u32,
}

/// Observer/interceptor of kernel execution.
///
/// `on_retire` fires once per executed instruction; `writeback` fires once
/// per destination-register write and may override the committed value —
/// returning `Some(v)` commits `v` instead. A single-bit fault injection is
/// `Some(value ^ (1 << bit))`.
///
/// Instructions whose guard fails do not retire and do not write back,
/// matching the paper's fault-site definition (a site is a bit of a
/// destination register that is actually written).
pub trait ExecHook {
    /// Called after an instruction retires (all write-backs committed).
    #[inline]
    fn on_retire(&mut self, _ev: RetireEvent<'_>) {}

    /// Called before a destination-register write commits; may override the
    /// value.
    #[inline]
    fn writeback(&mut self, _wb: &Writeback) -> Option<u32> {
        None
    }
}

/// The do-nothing hook (fault-free, untraced execution).
#[derive(Debug, Clone, Copy, Default)]
pub struct NopHook;

impl ExecHook for NopHook {}

impl<H: ExecHook + ?Sized> ExecHook for &mut H {
    #[inline]
    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        (**self).on_retire(ev);
    }

    #[inline]
    fn writeback(&mut self, wb: &Writeback) -> Option<u32> {
        (**self).writeback(wb)
    }
}
