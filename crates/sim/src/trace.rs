//! Dynamic-trace collection.
//!
//! Two granularities, matching what the pruning stages need:
//!
//! * **Per-thread summaries** (always collected): dynamic instruction count
//!   (`iCnt`) and destination-register bit totals. These feed Equation (1)
//!   — the exhaustive fault-site count of Table I — and the CTA-/thread-wise
//!   grouping of Section III-B.
//! * **Full traces** (collected only for threads in the filter): the exact
//!   `(pc, dest_bits)` sequence. These feed instruction-wise, loop-wise and
//!   bit-wise pruning, which only ever look at a handful of representative
//!   threads.

use serde::{Deserialize, Serialize};

use crate::hook::{ExecHook, RetireEvent};

/// One executed instruction in a full thread trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Static instruction index.
    pub pc: u32,
    /// Destination-register fault-site bits of this dynamic instruction.
    pub dest_bits: u16,
}

/// The full dynamic trace of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    /// Executed instructions in order.
    pub entries: Vec<TraceEntry>,
}

impl ThreadTrace {
    /// Total fault-site bits of this thread.
    #[must_use]
    pub fn fault_bits(&self) -> u64 {
        self.entries.iter().map(|e| u64::from(e.dest_bits)).sum()
    }

    /// The sequence of static pcs (used by sequence alignment).
    #[must_use]
    pub fn pcs(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.pc).collect()
    }
}

/// Full per-thread traces, stored densely: a vector of optional traces
/// indexed by flat thread id. Lookup is a bounds check plus an indexed
/// load — this sits on the per-instruction comparison path of the
/// injection fast paths, where the previous `BTreeMap` paid a pointer
/// chase per retirement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FullTraces {
    slots: Vec<Option<ThreadTrace>>,
    count: usize,
}

impl FullTraces {
    /// An empty trace set.
    #[must_use]
    pub fn new() -> Self {
        FullTraces::default()
    }

    /// Inserts (or replaces) the full trace of `tid`.
    pub fn insert(&mut self, tid: u32, trace: ThreadTrace) -> Option<ThreadTrace> {
        let idx = tid as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        let prev = self.slots[idx].replace(trace);
        if prev.is_none() {
            self.count += 1;
        }
        prev
    }

    /// The full trace of `tid`, if one was recorded.
    #[must_use]
    pub fn get(&self, tid: u32) -> Option<&ThreadTrace> {
        self.slots.get(tid as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the full trace of `tid`.
    pub fn get_mut(&mut self, tid: u32) -> Option<&mut ThreadTrace> {
        self.slots.get_mut(tid as usize).and_then(Option::as_mut)
    }

    /// Whether a full trace was recorded for `tid`.
    #[must_use]
    pub fn contains(&self, tid: u32) -> bool {
        self.get(tid).is_some()
    }

    /// Removes and returns the full trace of `tid`.
    pub fn remove(&mut self, tid: u32) -> Option<ThreadTrace> {
        let prev = self.slots.get_mut(tid as usize).and_then(Option::take);
        if prev.is_some() {
            self.count -= 1;
        }
        prev
    }

    /// Number of recorded traces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no traces were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `(tid, trace)` pairs in ascending thread order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &ThreadTrace)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i as u32, t)))
    }

    /// Recorded thread ids in ascending order.
    pub fn tids(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().map(|(t, _)| t)
    }

    /// Recorded traces in ascending thread order.
    pub fn values(&self) -> impl Iterator<Item = &ThreadTrace> {
        self.iter().map(|(_, t)| t)
    }
}

impl std::ops::Index<u32> for FullTraces {
    type Output = ThreadTrace;

    fn index(&self, tid: u32) -> &ThreadTrace {
        self.get(tid)
            .unwrap_or_else(|| panic!("no full trace recorded for thread {tid}"))
    }
}

impl PartialEq for FullTraces {
    fn eq(&self, other: &Self) -> bool {
        // Trailing empty slots are representation detail, not content.
        self.count == other.count && self.iter().eq(other.iter())
    }
}

impl Eq for FullTraces {}

impl FromIterator<(u32, ThreadTrace)> for FullTraces {
    fn from_iter<I: IntoIterator<Item = (u32, ThreadTrace)>>(iter: I) -> Self {
        let mut full = FullTraces::new();
        for (tid, trace) in iter {
            full.insert(tid, trace);
        }
        full
    }
}

/// Aggregated trace of one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTrace {
    /// Per-thread dynamic instruction count, indexed by flat thread id.
    pub icnt: Vec<u32>,
    /// Per-thread destination-register bit totals (fault sites per thread).
    pub fault_bits: Vec<u64>,
    /// Threads per CTA (to regroup flat tids into CTAs).
    pub threads_per_cta: u32,
    /// Full traces for the threads that were requested.
    pub full: FullTraces,
}

impl KernelTrace {
    /// Exhaustive fault-site count of the launch — Equation (1):
    /// `sum_t sum_i bit(t, i)`.
    #[must_use]
    pub fn total_fault_sites(&self) -> u64 {
        self.fault_bits.iter().sum()
    }

    /// Number of threads.
    #[must_use]
    pub fn num_threads(&self) -> u32 {
        self.icnt.len() as u32
    }

    /// Number of CTAs.
    #[must_use]
    pub fn num_ctas(&self) -> u32 {
        self.num_threads() / self.threads_per_cta.max(1)
    }

    /// Iterator over the flat thread-id range of one CTA.
    #[must_use]
    pub fn cta_threads(&self, cta: u32) -> std::ops::Range<u32> {
        let per = self.threads_per_cta;
        (cta * per)..((cta + 1) * per)
    }

    /// Mean per-thread `iCnt` of one CTA (the CTA classifier of Fig. 3).
    #[must_use]
    pub fn cta_mean_icnt(&self, cta: u32) -> f64 {
        let range = self.cta_threads(cta);
        let n = range.len() as f64;
        let sum: u64 = range.map(|t| u64::from(self.icnt[t as usize])).sum();
        sum as f64 / n
    }
}

/// An [`ExecHook`] that records traces.
#[derive(Debug, Clone)]
pub struct Tracer {
    icnt: Vec<u32>,
    fault_bits: Vec<u64>,
    threads_per_cta: u32,
    full: FullTraces,
}

impl Tracer {
    /// Creates a tracer for a launch of `num_threads` threads grouped into
    /// CTAs of `threads_per_cta`.
    #[must_use]
    pub fn new(num_threads: u32, threads_per_cta: u32) -> Self {
        Tracer {
            icnt: vec![0; num_threads as usize],
            fault_bits: vec![0; num_threads as usize],
            threads_per_cta,
            full: FullTraces::new(),
        }
    }

    /// Requests full traces for the given flat thread ids.
    #[must_use]
    pub fn with_full_traces(mut self, tids: impl IntoIterator<Item = u32>) -> Self {
        for t in tids {
            self.full.insert(t, ThreadTrace::default());
        }
        self
    }

    /// Finishes tracing and returns the aggregate.
    #[must_use]
    pub fn finish(self) -> KernelTrace {
        KernelTrace {
            icnt: self.icnt,
            fault_bits: self.fault_bits,
            threads_per_cta: self.threads_per_cta,
            full: self.full,
        }
    }
}

impl ExecHook for Tracer {
    #[inline]
    fn on_retire(&mut self, ev: RetireEvent<'_>) {
        let t = ev.tid as usize;
        self.icnt[t] += 1;
        let bits = ev.instr.dest_bits();
        self.fault_bits[t] += u64::from(bits);
        if let Some(full) = self.full.get_mut(ev.tid) {
            full.entries.push(TraceEntry {
                pc: ev.pc as u32,
                dest_bits: bits as u16,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Launch;
    use crate::machine::Simulator;
    use crate::mem::MemBlock;
    use fsp_isa::assemble;

    fn traced_run(src: &str, grid: u32, block: u32) -> KernelTrace {
        let p = assemble("t", src).unwrap();
        let launch = Launch::new(p).grid(grid, 1).block(block, 1, 1).param(0);
        let mut tracer =
            Tracer::new(launch.num_threads(), launch.threads_per_cta()).with_full_traces([0]);
        let mut global = MemBlock::with_words(1024);
        Simulator::new()
            .run(&launch, &mut global, &mut tracer)
            .unwrap();
        tracer.finish()
    }

    #[test]
    fn icnt_counts_executed_instructions_only() {
        // Guarded-off instructions must not count (fault sites are writes
        // that actually happen).
        let trace = traced_run(
            r#"
            set.eq.u32.u32 $p0/$o127, $r124, $r124   // true -> zero flag clear
            @$p0.eq bra skip                          // not taken
            add.u32 $r1, $r1, 0x1
            skip:
            @$p0.eq retp                              // guard fails: not executed
            exit
            "#,
            1,
            1,
        );
        // executed: set, bra(guard pass? no: eq fails so bra is skipped),
        // add, exit => set + add + exit = 3 (skipped guard instructions
        // don't retire).
        assert_eq!(trace.icnt[0], 3);
    }

    #[test]
    fn fault_bits_match_eq1() {
        let trace = traced_run(
            r#"
            mov.u32 $r1, 0x5                          // 32 bits
            set.lt.u32.u32 $p0/$r2, $r1, 0xA          // 4 + 32 bits
            st.global.u32 [$r124], $r1                // 0 bits
            exit                                      // 0 bits
            "#,
            1,
            2,
        );
        assert_eq!(trace.fault_bits[0], 32 + 36);
        assert_eq!(trace.total_fault_sites(), 2 * (32 + 36));
        let full = &trace.full[0];
        assert_eq!(full.fault_bits(), 68);
        assert_eq!(full.pcs(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cta_grouping_helpers() {
        let trace = traced_run("mov.u32 $r1, 0x1\nexit", 3, 4);
        assert_eq!(trace.num_threads(), 12);
        assert_eq!(trace.num_ctas(), 3);
        assert_eq!(trace.cta_threads(1), 4..8);
        assert!((trace.cta_mean_icnt(0) - 2.0).abs() < 1e-9);
    }
}
