//! Streaming outcome estimation: online multinomial confidence intervals
//! and CI-convergence early stopping for running campaigns.
//!
//! [`required_samples_finite`](crate::required_samples_finite) answers the
//! *a-priori* question — how many injections buy a given (confidence,
//! margin) pair in the worst case (p = 0.5). This module answers the
//! *anytime* question: given the outcomes observed so far, how tight are
//! the per-class estimates right now, and has every class converged to
//! within the requested margin?
//!
//! Three layers:
//!
//! * [`StreamEstimator`] — an online multinomial estimator over the five
//!   outcome classes (masked / sdc / crash / hang / detected, in
//!   [`Outcome::code`] order). It accumulates per-class counts and
//!   extrapolation weights plus the second weight moment, so weighted
//!   (pruned) campaigns get honest [Wilson]/[Agresti–Coull] intervals via
//!   the effective sample size `(Σw)² / Σw²`. Statically settled mass —
//!   fault sites a pruning stage resolved without injection — folds in as
//!   *certain* weight: it shifts the point estimates and shrinks the
//!   interval half-widths by the dynamic weight fraction, making the live
//!   estimate an anytime AVF estimate for the whole site population.
//! * [`StopRule`] — a sequential-sampling-aware convergence test: every
//!   per-class interval half-width must fit the margin at the given
//!   confidence, *and* a minimum-sample floor derived from
//!   [`required_samples_infinite`] must be met. The floor guards against
//!   optional-stopping flukes: the rule is checked after every sample, so
//!   without it a lucky early streak could satisfy the width condition at
//!   tiny n.
//! * [`EarlyStop`] — a deterministic prefix tracker. Campaign workers
//!   resolve sites out of plan order; the tracker feeds the estimator
//!   strictly along the contiguous resolved prefix and records the
//!   *minimum* prefix length at which the rule first holds. That length is
//!   a pure function of the planned outcome sequence — independent of
//!   worker count, chunk scheduling, and arrival order — so early-stopped
//!   campaigns are bit-reproducible.
//!
//! The estimator family is versioned by [`stream_version`] (like
//! `absint_version()` / `batch_version()`): any change to the interval
//! math or the stopping rule must bump the revision so result documents
//! that embed an early-stop block can be told apart.
//!
//! [Wilson]: StreamEstimator::wilson
//! [Agresti–Coull]: StreamEstimator::agresti_coull

use crate::profile::{Outcome, ResilienceProfile};
use crate::quantile::t_quantile;
use crate::sample::required_samples_infinite;

/// Bump on any change to the interval math, the stopping rule, or the
/// class ordering. Folded into [`stream_version`].
const STREAM_REVISION: u64 = 1;

/// Number of outcome classes tracked by the estimator.
pub const CLASSES: usize = 5;

/// Class labels in [`Outcome::code`] order — the canonical rendering used
/// by progress documents, metrics label values, and CLI tables.
pub const CLASS_LABELS: [&str; CLASSES] = ["masked", "sdc", "crash", "hang", "detected"];

/// Index of an outcome in the estimator's class arrays ([`Outcome::code`]
/// order, same as [`CLASS_LABELS`]).
#[must_use]
pub fn class_index(outcome: Outcome) -> usize {
    outcome.code() as usize
}

/// Version fingerprint of the streaming-estimator family (FNV-1a over the
/// revision and the class count). Reported in progress documents and in
/// the early-stop block of result documents; deliberately *not* part of
/// outcome-store keys, because streaming observation never changes any
/// per-site outcome.
#[must_use]
pub fn stream_version() -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in [STREAM_REVISION, CLASSES as u64]
        .iter()
        .flat_map(|v| v.to_le_bytes())
    {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Two-sided standard-normal critical value for a confidence level, via
/// the same high-ν t quantile the a-priori sample-size math uses, so the
/// streaming intervals and `required_samples` agree on z exactly.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
#[must_use]
pub fn two_sided_z(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    t_quantile(0.5 + confidence / 2.0, 1e9)
}

/// A per-class confidence interval: the point estimate and the interval
/// bounds, all as proportions in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassInterval {
    /// Maximum-likelihood point estimate of the class proportion.
    pub estimate: f64,
    /// Lower interval bound (clamped to 0).
    pub lo: f64,
    /// Upper interval bound (clamped to 1).
    pub hi: f64,
}

impl ClassInterval {
    /// Half the interval width — the achieved error margin for this class.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Online multinomial outcome estimator with weighted samples and certain
/// (statically settled) mass. See the [module docs](self) for the model.
///
/// Recording is pure count/weight accumulation, so the online estimator is
/// *exactly* equal to a batch recomputation from the same outcomes in any
/// order — a property the proptests below pin down.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamEstimator {
    counts: [u64; CLASSES],
    weights: [f64; CLASSES],
    sum_w: f64,
    sum_w2: f64,
    certain: [f64; CLASSES],
}

impl StreamEstimator {
    /// An empty estimator with no certain mass.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty estimator seeded with per-class *certain* weight: mass a
    /// pruning stage settled statically (assumed-masked loop iterations,
    /// predicted crashes, predicted detections) that carries no sampling
    /// uncertainty.
    ///
    /// # Panics
    ///
    /// Panics if any certain weight is negative or non-finite.
    #[must_use]
    pub fn with_certain(certain: [f64; CLASSES]) -> Self {
        for w in certain {
            assert!(
                w.is_finite() && w >= 0.0,
                "certain weight must be finite and non-negative, got {w}"
            );
        }
        StreamEstimator {
            certain,
            ..Self::default()
        }
    }

    /// Reconstructs an estimator from persisted moments (per-class counts
    /// and weights, the second weight moment, and the certain mass) — the
    /// exact state a [`record_weighted`](Self::record_weighted) sequence
    /// would have produced. Used by the service to assemble progress
    /// documents from job records without replaying outcomes.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    #[must_use]
    pub fn from_parts(
        counts: [u64; CLASSES],
        weights: [f64; CLASSES],
        sum_w2: f64,
        certain: [f64; CLASSES],
    ) -> Self {
        for w in weights.iter().chain(certain.iter()).chain([&sum_w2]) {
            assert!(
                w.is_finite() && *w >= 0.0,
                "weight must be finite and non-negative, got {w}"
            );
        }
        StreamEstimator {
            counts,
            weights,
            sum_w: weights.iter().sum(),
            sum_w2,
            certain,
        }
    }

    /// Records one outcome with weight 1.
    pub fn record(&mut self, outcome: Outcome) {
        self.record_weighted(outcome, 1.0);
    }

    /// Records one outcome with its extrapolation weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn record_weighted(&mut self, outcome: Outcome, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative, got {weight}"
        );
        let k = class_index(outcome);
        self.counts[k] += 1;
        self.weights[k] += weight;
        self.sum_w += weight;
        self.sum_w2 += weight * weight;
    }

    /// Number of outcomes recorded (raw samples, ignoring weights).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// True when no outcome has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-class raw sample counts in [`CLASS_LABELS`] order.
    #[must_use]
    pub fn counts(&self) -> [u64; CLASSES] {
        self.counts
    }

    /// Per-class accumulated weights in [`CLASS_LABELS`] order.
    #[must_use]
    pub fn weights(&self) -> [f64; CLASSES] {
        self.weights
    }

    /// Second moment of the sample weights (`Σw²`).
    #[must_use]
    pub fn sum_w2(&self) -> f64 {
        self.sum_w2
    }

    /// Per-class certain (statically settled) weights.
    #[must_use]
    pub fn certain(&self) -> [f64; CLASSES] {
        self.certain
    }

    /// Kish effective sample size `(Σw)² / Σw²` of the weighted sample;
    /// equals [`len`](Self::len) when all weights are 1.
    #[must_use]
    pub fn effective_n(&self) -> f64 {
        if self.sum_w2 == 0.0 {
            0.0
        } else {
            self.sum_w * self.sum_w / self.sum_w2
        }
    }

    /// Total weight: sampled plus certain mass.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.sum_w + self.certain.iter().sum::<f64>()
    }

    /// Fraction of the total weight that is sampled (carries uncertainty).
    /// Interval half-widths scale by this factor: certain mass narrows
    /// them because its classification is not in question.
    #[must_use]
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.total_weight();
        if total == 0.0 {
            0.0
        } else {
            self.sum_w / total
        }
    }

    /// Combined point estimate of a class proportion over the full
    /// population: certain mass plus the weighted sample share.
    #[must_use]
    pub fn estimate(&self, class: usize) -> f64 {
        let total = self.total_weight();
        if total == 0.0 {
            return 0.0;
        }
        (self.certain[class] + self.weights[class]) / total
    }

    /// Proportion of the *sampled* weight in a class (no certain mass).
    fn sampled_p(&self, class: usize) -> f64 {
        if self.sum_w == 0.0 {
            0.0
        } else {
            self.weights[class] / self.sum_w
        }
    }

    /// Folds a dynamic-side interval into the combined population scale.
    fn fold(&self, class: usize, center: f64, half: f64) -> ClassInterval {
        let total = self.total_weight();
        if total == 0.0 {
            // Nothing known at all: the trivial interval.
            return ClassInterval {
                estimate: 0.0,
                lo: 0.0,
                hi: 1.0,
            };
        }
        let f_dyn = self.dynamic_fraction();
        let certain = self.certain[class] / total;
        ClassInterval {
            estimate: self.estimate(class),
            lo: (certain + f_dyn * (center - half)).max(0.0),
            hi: (certain + f_dyn * (center + half)).min(1.0),
        }
    }

    /// Wilson score interval for one class at the given confidence, using
    /// the effective sample size and folding in certain mass.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn wilson(&self, class: usize, confidence: f64) -> ClassInterval {
        let z = two_sided_z(confidence);
        let n = self.effective_n();
        if n == 0.0 {
            return self.fold(class, 0.0, 0.0);
        }
        let p = self.sampled_p(class);
        let denom = 1.0 + z * z / n;
        let center = (p + z * z / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z * z / (4.0 * n * n)).sqrt();
        self.fold(class, center, half)
    }

    /// Agresti–Coull interval for one class — the simpler add-`z²/2`
    /// approximation of Wilson; exposed for cross-checking.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn agresti_coull(&self, class: usize, confidence: f64) -> ClassInterval {
        let z = two_sided_z(confidence);
        let n = self.effective_n();
        if n == 0.0 {
            return self.fold(class, 0.0, 0.0);
        }
        let x = self.sampled_p(class) * n;
        let n_tilde = n + z * z;
        let p_tilde = (x + z * z / 2.0) / n_tilde;
        let half = z * (p_tilde * (1.0 - p_tilde) / n_tilde).sqrt();
        self.fold(class, p_tilde, half)
    }

    /// Wilson intervals for all five classes in [`CLASS_LABELS`] order.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn intervals(&self, confidence: f64) -> [ClassInterval; CLASSES] {
        std::array::from_fn(|k| self.wilson(k, confidence))
    }

    /// The widest per-class half-width — the achieved error margin of the
    /// whole outcome distribution at this confidence.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn achieved_margin(&self, confidence: f64) -> f64 {
        self.intervals(confidence)
            .iter()
            .map(ClassInterval::half_width)
            .fold(0.0, f64::max)
    }

    /// True when every per-class interval fits the margin.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1`.
    #[must_use]
    pub fn converged(&self, confidence: f64, margin: f64) -> bool {
        !self.is_empty() && self.achieved_margin(confidence) <= margin
    }

    /// The combined (certain + sampled) outcome distribution as a
    /// resilience profile — the anytime AVF estimate.
    #[must_use]
    pub fn profile(&self) -> ResilienceProfile {
        let w: [f64; CLASSES] = std::array::from_fn(|k| self.certain[k] + self.weights[k]);
        ResilienceProfile::from_parts(w[0], w[1], w[2] + w[3], w[2], w[3], w[4])
    }
}

/// Sequential-sampling-aware stopping rule: stop once every per-class
/// Wilson interval fits `margin` at `confidence`, but never before
/// `min_samples` raw injections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    /// Confidence level of the per-class intervals, e.g. `0.998`.
    pub confidence: f64,
    /// Required error margin (maximum interval half-width), e.g. `0.0063`.
    pub margin: f64,
    /// Minimum raw sample count before the rule may fire.
    pub min_samples: u64,
}

impl StopRule {
    /// Builds a rule composed with the a-priori `required_samples` math:
    /// the minimum-sample floor is 1% of the infinite-population bound for
    /// the same (confidence, margin) pair, but at least 50 samples. The
    /// width condition is checked after every sample; the floor keeps a
    /// lucky opening streak (optional stopping) from ending a campaign
    /// that has seen a statistically trivial number of injections.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < confidence < 1` and `0 < margin < 1`.
    #[must_use]
    pub fn new(confidence: f64, margin: f64) -> Self {
        assert!(
            margin > 0.0 && margin < 1.0,
            "margin must be in (0, 1), got {margin}"
        );
        let apriori = required_samples_infinite(confidence, margin);
        StopRule {
            confidence,
            margin,
            min_samples: apriori.div_ceil(100).max(50),
        }
    }

    /// Overrides the minimum-sample floor (tests and aggressive modes).
    #[must_use]
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// True when the estimator satisfies both the floor and the per-class
    /// width condition.
    #[must_use]
    pub fn should_stop(&self, est: &StreamEstimator) -> bool {
        est.len() >= self.min_samples && est.converged(self.confidence, self.margin)
    }

    /// Projected total raw sample count needed for convergence, from the
    /// current estimates: Wilson-inverts the widest class, rescales from
    /// effective to raw samples by the design effect, and respects the
    /// floor. A dashboard estimate, not a guarantee.
    #[must_use]
    pub fn projected_total(&self, est: &StreamEstimator) -> u64 {
        if est.is_empty() {
            return required_samples_infinite(self.confidence, self.margin).max(self.min_samples);
        }
        if self.should_stop(est) {
            return est.len();
        }
        let f_dyn = est.dynamic_fraction();
        if f_dyn == 0.0 {
            // All mass is certain; only the floor can be outstanding.
            return est.len().max(self.min_samples);
        }
        let z = two_sided_z(self.confidence);
        // The combined half-width scales by f_dyn, so the dynamic side
        // must reach margin / f_dyn.
        let e = (self.margin / f_dyn).min(1.0);
        let needed_eff = (0..CLASSES)
            .map(|k| {
                let p = est.sampled_p(k);
                // Wilson width ~ z*sqrt(p(1-p)/n) away from the
                // boundaries, ~ z²/2n at p ∈ {0, 1}.
                (z * z * p * (1.0 - p) / (e * e)).max(z * z / (2.0 * e))
            })
            .fold(0.0, f64::max);
        let design_effect = est.len() as f64 / est.effective_n().max(1e-12);
        let projected = (needed_eff * design_effect).ceil() as u64;
        projected.max(est.len()).max(self.min_samples)
    }
}

/// Deterministic early-stop tracker over a planned campaign.
///
/// Sites resolve out of plan order (chunk scheduling, cache hits, racing
/// workers, fleet delivery). The tracker buffers every resolution in a
/// slot vector and advances a contiguous-prefix cursor, feeding the
/// estimator one site at a time *in plan order* and testing the rule after
/// each — so [`stop_len`](Self::stop_len) is the minimum prefix length at
/// which the rule holds, a pure function of the planned outcome sequence.
/// Workers may overshoot past that prefix before noticing; the final
/// profile must be computed over `[0, stop_len)` only, which is what makes
/// early-stopped runs byte-reproducible across reruns, worker counts and
/// placements.
#[derive(Debug, Clone)]
pub struct EarlyStop {
    rule: StopRule,
    weights: Vec<f64>,
    slots: Vec<Option<Outcome>>,
    prefix: usize,
    est: StreamEstimator,
    fired: Option<usize>,
}

impl EarlyStop {
    /// Builds a tracker for a plan of per-site extrapolation weights, with
    /// the campaign's statically settled mass as certain weight.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    #[must_use]
    pub fn new(rule: StopRule, weights: Vec<f64>, certain: [f64; CLASSES]) -> Self {
        let slots = vec![None; weights.len()];
        EarlyStop {
            rule,
            weights,
            slots,
            prefix: 0,
            est: StreamEstimator::with_certain(certain),
            fired: None,
        }
    }

    /// Records the outcome of the site at plan index `idx`. Re-resolving
    /// an index is a no-op (the first outcome wins — resolutions are
    /// deterministic, so duplicates agree anyway).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the plan.
    pub fn resolve(&mut self, idx: usize, outcome: Outcome) {
        assert!(idx < self.slots.len(), "site index {idx} outside the plan");
        if self.slots[idx].is_some() {
            return;
        }
        self.slots[idx] = Some(outcome);
        while let Some(Some(o)) = self.slots.get(self.prefix).copied() {
            self.est.record_weighted(o, self.weights[self.prefix]);
            self.prefix += 1;
            if self.fired.is_none() && self.rule.should_stop(&self.est) {
                self.fired = Some(self.prefix);
            }
        }
    }

    /// Length of the contiguous resolved prefix.
    #[must_use]
    pub fn prefix_len(&self) -> usize {
        self.prefix
    }

    /// Number of sites in the plan.
    #[must_use]
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// The minimum plan-order prefix length at which the stopping rule
    /// first held, if it has.
    #[must_use]
    pub fn stop_len(&self) -> Option<usize> {
        self.fired
    }

    /// True once the rule has fired — remaining work can be cancelled.
    #[must_use]
    pub fn should_stop(&self) -> bool {
        self.fired.is_some()
    }

    /// The estimator over the resolved prefix.
    #[must_use]
    pub fn estimator(&self) -> &StreamEstimator {
        &self.est
    }

    /// The rule this tracker enforces.
    #[must_use]
    pub fn rule(&self) -> &StopRule {
        &self.rule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const OUTCOMES: [Outcome; CLASSES] = [
        Outcome::Masked,
        Outcome::Sdc,
        Outcome::CRASH,
        Outcome::HANG,
        Outcome::Detected,
    ];

    fn outcome(i: u8) -> Outcome {
        OUTCOMES[i as usize % CLASSES]
    }

    #[test]
    fn version_is_stable_and_nonzero() {
        assert_ne!(stream_version(), 0);
        assert_eq!(stream_version(), stream_version());
    }

    #[test]
    fn class_order_matches_wire_codes() {
        for (k, o) in OUTCOMES.iter().enumerate() {
            assert_eq!(class_index(*o), k);
            assert_eq!(o.code() as usize, k);
        }
    }

    #[test]
    fn wilson_matches_textbook_value() {
        // n = 100, x = 50, 95%: the classic Wilson interval.
        let mut est = StreamEstimator::new();
        for i in 0..100 {
            est.record(if i < 50 {
                Outcome::Masked
            } else {
                Outcome::Sdc
            });
        }
        let iv = est.wilson(0, 0.95);
        assert!((iv.estimate - 0.5).abs() < 1e-12);
        assert!((iv.lo - 0.4038).abs() < 1e-3, "lo = {}", iv.lo);
        assert!((iv.hi - 0.5962).abs() < 1e-3, "hi = {}", iv.hi);
        // Agresti–Coull agrees to interval-width resolution here.
        let ac = est.agresti_coull(0, 0.95);
        assert!((ac.half_width() - iv.half_width()).abs() < 1e-3);
    }

    #[test]
    fn unit_weights_have_effective_n_equal_to_n() {
        let mut est = StreamEstimator::new();
        for i in 0..37 {
            est.record(outcome(i));
        }
        assert_eq!(est.len(), 37);
        assert!((est.effective_n() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn certain_mass_narrows_intervals() {
        let mut dynamic = StreamEstimator::new();
        let mut folded = StreamEstimator::with_certain([300.0, 0.0, 0.0, 0.0, 0.0]);
        for i in 0..100 {
            dynamic.record(outcome(i));
            folded.record(outcome(i));
        }
        for k in 0..CLASSES {
            let plain = dynamic.wilson(k, 0.99).half_width();
            let tight = folded.wilson(k, 0.99).half_width();
            assert!(
                tight < plain,
                "class {k}: certain mass must narrow the interval ({tight} !< {plain})"
            );
        }
        // The masked estimate is pulled toward the certain mass.
        assert!(folded.estimate(0) > dynamic.estimate(0));
    }

    #[test]
    fn empty_estimator_is_trivial() {
        let est = StreamEstimator::new();
        assert!(est.is_empty());
        let iv = est.wilson(1, 0.998);
        assert_eq!((iv.lo, iv.hi), (0.0, 1.0));
        assert!(!est.converged(0.998, 0.0063));
    }

    #[test]
    fn from_parts_round_trips() {
        let mut est = StreamEstimator::with_certain([4.0, 0.0, 1.5, 0.0, 0.25]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            est.record_weighted(
                outcome(rng.gen_range(0u8..CLASSES as u8)),
                rng.gen_range(0.5..8.0),
            );
        }
        let back =
            StreamEstimator::from_parts(est.counts(), est.weights(), est.sum_w2(), est.certain());
        assert!((back.effective_n() - est.effective_n()).abs() < 1e-9);
        // Σw is re-derived from the per-class totals, so agreement is to
        // accumulation-order rounding, not bit-exact.
        for k in 0..CLASSES {
            let (a, b) = (back.wilson(k, 0.99), est.wilson(k, 0.99));
            assert!((a.estimate - b.estimate).abs() < 1e-12);
            assert!((a.lo - b.lo).abs() < 1e-12 && (a.hi - b.hi).abs() < 1e-12);
        }
    }

    #[test]
    fn profile_matches_record_weighted() {
        let mut est = StreamEstimator::new();
        let mut profile = ResilienceProfile::new();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let o = outcome(rng.gen_range(0u8..CLASSES as u8));
            let w = rng.gen_range(0.1..4.0);
            est.record_weighted(o, w);
            profile.record_weighted(o, w);
        }
        assert!(est.profile().max_abs_diff(&profile) < 1e-9);
        assert!((est.profile().total() - profile.total()).abs() < 1e-9);
    }

    #[test]
    fn stop_rule_floor_composes_with_required_samples() {
        let rule = StopRule::new(0.998, 0.0063);
        let apriori = required_samples_infinite(0.998, 0.0063);
        assert_eq!(rule.min_samples, apriori.div_ceil(100));
        // A loose rule still keeps the 50-sample guard.
        assert_eq!(StopRule::new(0.9, 0.2).min_samples, 50);
    }

    #[test]
    fn stop_rule_never_fires_below_floor() {
        let rule = StopRule::new(0.9, 0.3); // wide margin: converges fast
        let mut est = StreamEstimator::new();
        for i in 0..200 {
            assert!(
                est.len() >= rule.min_samples || !rule.should_stop(&est),
                "fired below the floor at n = {}",
                est.len()
            );
            est.record(outcome(i));
        }
        assert!(rule.should_stop(&est), "must fire once floor + width hold");
    }

    #[test]
    fn projected_total_is_sane() {
        let rule = StopRule::new(0.99, 0.05);
        let empty = StreamEstimator::new();
        assert_eq!(
            rule.projected_total(&empty),
            required_samples_infinite(0.99, 0.05).max(rule.min_samples)
        );
        let mut est = StreamEstimator::new();
        for i in 0..100 {
            est.record(outcome(i));
        }
        let projected = rule.projected_total(&est);
        assert!(projected >= est.len());
        // Once converged, the projection is exactly what was spent.
        let mut big = StreamEstimator::new();
        for i in 0..5000u64 {
            big.record(outcome((i % 256) as u8));
        }
        assert!(rule.should_stop(&big));
        assert_eq!(rule.projected_total(&big), 5000);
    }

    #[test]
    fn early_stop_is_arrival_order_invariant() {
        let rule = StopRule::new(0.9, 0.12).with_min_samples(40);
        let n = 400;
        let mut rng = StdRng::seed_from_u64(0xFEED);
        let outcomes: Vec<Outcome> = (0..n)
            .map(|_| outcome(rng.gen_range(0u8..CLASSES as u8)))
            .collect();
        let weights = vec![1.0; n];

        let mut plan_order = EarlyStop::new(rule, weights.clone(), [0.0; CLASSES]);
        for (i, o) in outcomes.iter().enumerate() {
            plan_order.resolve(i, *o);
        }
        for seed in 0..8u64 {
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let mut shuffled = EarlyStop::new(rule, weights.clone(), [0.0; CLASSES]);
            for &i in &order {
                shuffled.resolve(i, outcomes[i]);
            }
            assert_eq!(shuffled.stop_len(), plan_order.stop_len());
            assert_eq!(shuffled.estimator(), plan_order.estimator());
        }
    }

    #[test]
    fn early_stop_fires_at_minimum_prefix() {
        // Fixed-seed oracle: stop_len is the *first* prefix length whose
        // replayed estimator satisfies the rule, and no shorter prefix
        // does — early stop never fires before the CI condition holds on
        // the contiguous prefix.
        let rule = StopRule::new(0.95, 0.1).with_min_samples(30);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let n = 600;
        let outcomes: Vec<Outcome> = (0..n)
            .map(|_| outcome(rng.gen_range(0u8..CLASSES as u8)))
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..4.0)).collect();
        let certain = [120.0, 0.0, 6.0, 0.0, 0.0];

        let mut tracker = EarlyStop::new(rule, weights.clone(), certain);
        for (i, o) in outcomes.iter().enumerate() {
            tracker.resolve(i, *o);
        }
        let stop = tracker.stop_len().expect("loose rule must fire on n=600");

        let replay_converges = |len: usize| {
            let mut est = StreamEstimator::with_certain(certain);
            for i in 0..len {
                est.record_weighted(outcomes[i], weights[i]);
            }
            rule.should_stop(&est)
        };
        assert!(replay_converges(stop), "rule must hold at stop_len");
        for len in (0..stop).rev().take(25) {
            assert!(!replay_converges(len), "prefix {len} already converged");
        }
    }

    #[test]
    fn resolve_twice_is_idempotent() {
        let rule = StopRule::new(0.9, 0.3);
        let mut t = EarlyStop::new(rule, vec![1.0; 4], [0.0; CLASSES]);
        t.resolve(1, Outcome::Sdc);
        t.resolve(1, Outcome::Masked); // ignored: first outcome wins
        t.resolve(0, Outcome::Masked);
        assert_eq!(t.prefix_len(), 2);
        assert_eq!(t.estimator().counts(), [1, 1, 0, 0, 0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Online accumulation equals batch recomputation, in any order:
        /// final counts/weights/intervals are permutation-invariant.
        #[test]
        fn online_equals_batch_under_permutation(
            codes in prop::collection::vec(0u8..CLASSES as u8, 1..200),
            seed in 0u64..1000,
        ) {
            let mut online = StreamEstimator::new();
            for &c in &codes {
                online.record_weighted(outcome(c), f64::from(c) + 0.5);
            }
            let mut order: Vec<usize> = (0..codes.len()).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let mut batch = StreamEstimator::new();
            for &i in &order {
                batch.record_weighted(outcome(codes[i]), f64::from(codes[i]) + 0.5);
            }
            prop_assert_eq!(online.counts(), batch.counts());
            prop_assert!((online.effective_n() - batch.effective_n()).abs() < 1e-9);
            for k in 0..CLASSES {
                let a = online.wilson(k, 0.99);
                let b = batch.wilson(k, 0.99);
                prop_assert!((a.lo - b.lo).abs() < 1e-12 && (a.hi - b.hi).abs() < 1e-12);
            }
        }

        /// Duplicating a sample narrows every interval: the CI is
        /// monotone in replication — the "in expectation" narrowing
        /// pinned on its deterministic backbone.
        #[test]
        fn replication_narrows_intervals(
            codes in prop::collection::vec(0u8..CLASSES as u8, 2..60),
        ) {
            let mut once = StreamEstimator::new();
            let mut fourfold = StreamEstimator::new();
            for &c in &codes {
                once.record(outcome(c));
            }
            for _ in 0..4 {
                for &c in &codes {
                    fourfold.record(outcome(c));
                }
            }
            for k in 0..CLASSES {
                let wide = once.wilson(k, 0.998).half_width();
                let narrow = fourfold.wilson(k, 0.998).half_width();
                prop_assert!(narrow < wide, "class {}: {} !< {}", k, narrow, wide);
            }
            prop_assert!(fourfold.achieved_margin(0.998) < once.achieved_margin(0.998));
        }

        /// The tracker's estimator state always equals a plan-order replay
        /// of its resolved prefix, whatever the arrival order.
        #[test]
        fn tracker_prefix_equals_replay(
            codes in prop::collection::vec(0u8..CLASSES as u8, 1..120),
            seed in 0u64..1000,
        ) {
            let rule = StopRule::new(0.95, 0.15).with_min_samples(10);
            let n = codes.len();
            let mut order: Vec<usize> = (0..n).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..i + 1));
            }
            let arrivals = rng.gen_range(0..n + 1);
            let mut tracker = EarlyStop::new(rule, vec![1.0; n], [0.0; CLASSES]);
            for &i in order.iter().take(arrivals) {
                tracker.resolve(i, outcome(codes[i]));
            }
            let mut replay = StreamEstimator::new();
            for &c in codes.iter().take(tracker.prefix_len()) {
                replay.record(outcome(c));
            }
            prop_assert_eq!(tracker.estimator(), &replay);
            if let Some(stop) = tracker.stop_len() {
                prop_assert!(stop <= tracker.prefix_len());
            }
        }
    }
}
