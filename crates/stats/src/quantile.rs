//! Normal and Student-t quantile functions.
//!
//! Self-contained implementations (no external math crates): the standard
//! normal inverse CDF uses Acklam's rational approximation (relative error
//! below 1.15e-9 over the full domain); the Student-t quantile uses the
//! Cornish-Fisher asymptotic expansion in the normal quantile, which is
//! accurate to well under 1e-4 for the degrees of freedom that matter here
//! (campaign sizes are in the hundreds to tens of thousands).

/// Inverse CDF of the standard normal distribution.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be in (0, 1), got {p}");

    // Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e+02,
        -2.759_285_104_469_687e+02,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e+01,
        2.506_628_277_459_239e+00,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e+01,
        1.615_858_368_580_409e+02,
        -1.556_989_798_598_866e+02,
        6.680_131_188_771_972e+01,
        -1.328_068_155_288_572e+01,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-03,
        -3.223_964_580_411_365e-01,
        -2.400_758_277_161_838e+00,
        -2.549_732_539_343_734e+00,
        4.374_664_141_464_968e+00,
        2.938_163_982_698_783e+00,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-03,
        3.224_671_290_700_398e-01,
        2.445_134_137_142_996e+00,
        3.754_408_661_907_416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Inverse CDF of the Student-t distribution with `df` degrees of freedom.
///
/// Uses the Cornish-Fisher expansion around the normal quantile; for the
/// large `df` used in fault-injection sample sizing the error is
/// negligible, and for small `df` (>= 3) it stays within ~1e-3.
///
/// # Panics
///
/// Panics unless `0 < p < 1` and `df > 0`.
#[must_use]
pub fn t_quantile(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    let z = normal_quantile(p);
    let g1 = (z.powi(3) + z) / 4.0;
    let g2 = (5.0 * z.powi(5) + 16.0 * z.powi(3) + 3.0 * z) / 96.0;
    let g3 = (3.0 * z.powi(7) + 19.0 * z.powi(5) + 17.0 * z.powi(3) - 15.0 * z) / 384.0;
    let g4 = (79.0 * z.powi(9) + 776.0 * z.powi(7) + 1482.0 * z.powi(5)
        - 1920.0 * z.powi(3)
        - 945.0 * z)
        / 92_160.0;
    z + g1 / df + g2 / df.powi(2) + g3 / df.powi(3) + g4 / df.powi(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        // Classic z-scores.
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-5);
        assert!((normal_quantile(0.999) - 3.090_232).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-12);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "asymmetry at p={p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn t_quantile_approaches_normal() {
        let z = normal_quantile(0.975);
        let t = t_quantile(0.975, 1e6);
        assert!((z - t).abs() < 1e-5);
    }

    #[test]
    fn t_quantile_known_values() {
        // R: qt(0.975, 10) = 2.228139; qt(0.975, 30) = 2.042272;
        //    qt(0.995, 60) = 2.660283
        assert!((t_quantile(0.975, 10.0) - 2.228_139).abs() < 2e-3);
        assert!((t_quantile(0.975, 30.0) - 2.042_272).abs() < 1e-4);
        assert!((t_quantile(0.995, 60.0) - 2.660_283).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_probability() {
        let _ = normal_quantile(1.0);
    }
}
