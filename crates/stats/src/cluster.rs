//! Partition-agreement metrics.
//!
//! Used to quantify the paper's pivotal Figure 2 / Figure 3 claim: the CTA
//! grouping induced by fault-injection *outcomes* agrees with the grouping
//! induced by the iCnt classifier alone.

/// The Rand index between two partitions of the same elements, given as
/// per-element group labels. 1.0 means identical partitions; ~0.5 is what
/// unrelated random partitions score.
///
/// ```
/// use fsp_stats::rand_index;
/// assert_eq!(rand_index(&[0, 0, 1, 1], &[5, 5, 9, 9]), 1.0);
/// assert!(rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]) < 0.5);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "partitions must label the same elements");
    assert!(!a.is_empty(), "rand index of empty partitions");
    if a.len() == 1 {
        return 1.0;
    }
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..a.len() {
        for j in i + 1..a.len() {
            let same_a = a[i] == a[j];
            let same_b = b[i] == b[j];
            if same_a == same_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Turns a list of groups (each a list of element ids) into per-element
/// labels over `0..n`.
///
/// # Panics
///
/// Panics if an element id is out of range or an element is missing from
/// every group.
#[must_use]
pub fn labels_from_groups(groups: &[Vec<u32>], n: usize) -> Vec<usize> {
    let mut labels = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            labels[m as usize] = g;
        }
    }
    assert!(
        labels.iter().all(|&l| l != usize::MAX),
        "every element must belong to a group"
    );
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        assert_eq!(rand_index(&[0, 1, 2], &[7, 8, 9]), 1.0);
    }

    #[test]
    fn refinement_scores_below_one() {
        // b splits a's first group.
        let r = rand_index(&[0, 0, 0, 1], &[0, 0, 1, 2]);
        assert!(r < 1.0 && r > 0.5);
    }

    #[test]
    fn singletons_vs_one_group() {
        let r = rand_index(&[0, 0, 0, 0], &[0, 1, 2, 3]);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn labels_from_groups_roundtrip() {
        let groups = vec![vec![0, 2], vec![1, 3]];
        assert_eq!(labels_from_groups(&groups, 4), vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "every element")]
    fn missing_element_rejected() {
        let _ = labels_from_groups(&[vec![0]], 2);
    }
}
