//! Required-sample-size computation (Equations 2–4 of the paper).

use crate::quantile::t_quantile;

/// Result of a sample-size computation, carrying the inputs for reporting
/// (Table II prints these alongside the counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequiredSamples {
    /// Two-sided confidence level (e.g. `0.998`).
    pub confidence: f64,
    /// Error margin `e` as a fraction (e.g. `0.0063` for ±0.63%).
    pub error_margin: f64,
    /// The t-statistic used.
    pub t: f64,
    /// Number of required fault-injection runs.
    pub samples: u64,
}

/// Equation (2): required samples from a *finite* population of `n`
/// fault sites, at worst-case program vulnerability factor `p = 0.5`.
///
/// ```
/// use fsp_stats::required_samples_finite;
/// let r = required_samples_finite(7.73e8 as u64, 0.998, 0.0063);
/// assert!((59_000..62_000).contains(&r.samples));
/// // A small population needs fewer runs than the infinite-population
/// // formula suggests.
/// let small = required_samples_finite(1_000, 0.95, 0.03);
/// assert!(small.samples < 1_000);
/// ```
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`, `error_margin > 0` and
/// `population > 0`.
#[must_use]
pub fn required_samples_finite(
    population: u64,
    confidence: f64,
    error_margin: f64,
) -> RequiredSamples {
    assert!(population > 0, "population must be positive");
    let t = two_sided_t(confidence);
    let p = 0.5;
    let n = population as f64;
    let samples = n / (1.0 + error_margin * error_margin * (n - 1.0) / (t * t * p * (1.0 - p)));
    RequiredSamples {
        confidence,
        error_margin,
        t,
        samples: samples.ceil() as u64,
    }
}

/// Equation (4): required samples as the population grows unboundedly,
/// at worst-case `p = 0.5`: `n = t^2 / (4 e^2)`.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1` and `error_margin > 0`.
#[must_use]
pub fn required_samples_infinite(confidence: f64, error_margin: f64) -> u64 {
    let t = two_sided_t(confidence);
    ((t * t) / (4.0 * error_margin * error_margin)).ceil() as u64
}

/// The two-sided t-statistic for a confidence level, at the asymptotic
/// (normal) limit the paper uses for its 60K-run baselines.
fn two_sided_t(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1), got {confidence}"
    );
    assert!(confidence > 0.5, "confidence below 50% is not meaningful");
    t_quantile(0.5 + confidence / 2.0, 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_is_60k() {
        // 99.8% CI, ±0.63% margin => ~60,181 runs (Table II row 2).
        let n = required_samples_infinite(0.998, 0.0063);
        assert!(
            (59_500..61_500).contains(&n),
            "expected ~60K samples, got {n}"
        );
    }

    #[test]
    fn paper_quick_campaign_is_1k() {
        // 95% CI, ±3.0% margin => ~1,067 runs (Table II row 3 reports 1,062
        // with slightly different rounding of t).
        let n = required_samples_infinite(0.95, 0.03);
        assert!((1_000..1_100).contains(&n), "expected ~1K samples, got {n}");
    }

    #[test]
    fn finite_population_matches_infinite_for_huge_n() {
        let inf = required_samples_infinite(0.998, 0.0063);
        let fin = required_samples_finite(u64::MAX / 2, 0.998, 0.0063).samples;
        assert!((i64::try_from(inf).unwrap() - i64::try_from(fin).unwrap()).abs() <= 1);
    }

    #[test]
    fn finite_population_caps_at_population() {
        let r = required_samples_finite(100, 0.998, 0.0063);
        assert!(r.samples <= 100);
    }

    #[test]
    fn tighter_margin_needs_more_samples() {
        let a = required_samples_infinite(0.95, 0.05);
        let b = required_samples_infinite(0.95, 0.01);
        assert!(b > a * 20);
    }
}
