#![warn(missing_docs)]
//! Statistical machinery for fault-injection campaigns.
//!
//! Implements the statistical-fault-injection theory of Leveugle et al. that
//! the paper's baseline rests on (Section II-D, Equations 2-4): given a
//! confidence level, an error margin and a population of fault sites, how
//! many randomly sampled injections are needed for a sound resilience
//! profile — plus the profile bookkeeping itself (masked / SDC / other
//! percentages and distances between profiles).
//!
//! # Example
//!
//! ```
//! use fsp_stats::{required_samples_infinite, ResilienceProfile, Outcome};
//!
//! // The paper's baseline: 99.8% confidence, ±0.63% error -> ~60K runs.
//! let n = required_samples_infinite(0.998, 0.0063);
//! assert!((59_000..62_000).contains(&n));
//!
//! let mut profile = ResilienceProfile::default();
//! profile.record(Outcome::Masked);
//! profile.record(Outcome::Sdc);
//! assert_eq!(profile.pct_masked(), 50.0);
//! ```

mod cluster;
mod profile;
mod quantile;
mod sample;
pub mod stream;

pub use cluster::{labels_from_groups, rand_index};
pub use profile::{FiveNumber, Outcome, OutcomeKind, ResilienceProfile};
pub use quantile::{normal_quantile, t_quantile};
pub use sample::{required_samples_finite, required_samples_infinite, RequiredSamples};
pub use stream::{stream_version, ClassInterval, EarlyStop, StopRule, StreamEstimator};
