//! Error-resilience profiles: the distribution of fault-injection outcomes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Fine-grained cause of an *Other* outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutcomeKind {
    /// The application crashed (invalid/misaligned memory access).
    Crash,
    /// The application hung (dynamic-instruction budget exceeded).
    Hang,
}

/// Classification of a single fault-injection run (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// The fault did not change the application output.
    Masked,
    /// Silent data corruption: successful termination, wrong output.
    Sdc,
    /// Crash or hang.
    Other(OutcomeKind),
    /// The fault was caught by an in-kernel detector (DMR compare) and the
    /// kernel took the detected-exit: a DUE rather than an SDC.
    Detected,
}

impl Outcome {
    /// Crash shorthand.
    pub const CRASH: Outcome = Outcome::Other(OutcomeKind::Crash);
    /// Hang shorthand.
    pub const HANG: Outcome = Outcome::Other(OutcomeKind::Hang);

    /// Stable single-byte wire/storage code (used by the persistent
    /// outcome store and the service API). Inverse of
    /// [`Outcome::from_code`]; the mapping is frozen — extend, never
    /// renumber.
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            Outcome::Masked => 0,
            Outcome::Sdc => 1,
            Outcome::Other(OutcomeKind::Crash) => 2,
            Outcome::Other(OutcomeKind::Hang) => 3,
            Outcome::Detected => 4,
        }
    }

    /// Decodes a wire/storage code; `None` for unknown codes.
    #[must_use]
    pub const fn from_code(code: u8) -> Option<Outcome> {
        match code {
            0 => Some(Outcome::Masked),
            1 => Some(Outcome::Sdc),
            2 => Some(Outcome::CRASH),
            3 => Some(Outcome::HANG),
            4 => Some(Outcome::Detected),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Masked => write!(f, "masked"),
            Outcome::Sdc => write!(f, "sdc"),
            Outcome::Other(OutcomeKind::Crash) => write!(f, "other(crash)"),
            Outcome::Other(OutcomeKind::Hang) => write!(f, "other(hang)"),
            Outcome::Detected => write!(f, "detected"),
        }
    }
}

/// The error-resilience profile of a kernel: weighted counts of masked, SDC
/// and other outcomes.
///
/// Weights are real-valued because pruned campaigns extrapolate: one
/// injection into a representative thread stands for all the threads in its
/// group, so its outcome is recorded with the group's weight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResilienceProfile {
    masked: f64,
    sdc: f64,
    other: f64,
    crashes: f64,
    hangs: f64,
    #[serde(default)]
    detected: f64,
}

impl ResilienceProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a profile from plain counts.
    #[must_use]
    pub fn from_counts(masked: u64, sdc: u64, other: u64) -> Self {
        ResilienceProfile {
            masked: masked as f64,
            sdc: sdc as f64,
            other: other as f64,
            crashes: 0.0,
            hangs: 0.0,
            detected: 0.0,
        }
    }

    /// Reconstructs a profile from its raw weights, e.g. when decoding the
    /// wire representation used by the campaign service. Inverse of the
    /// accessor sextuple ([`ResilienceProfile::masked`], [`sdc`],
    /// [`other`], [`crashes`], [`hangs`], [`detected`]) — round-tripping
    /// through it is bit-exact.
    ///
    /// [`sdc`]: ResilienceProfile::sdc
    /// [`other`]: ResilienceProfile::other
    /// [`crashes`]: ResilienceProfile::crashes
    /// [`hangs`]: ResilienceProfile::hangs
    /// [`detected`]: ResilienceProfile::detected
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    #[must_use]
    pub fn from_parts(
        masked: f64,
        sdc: f64,
        other: f64,
        crashes: f64,
        hangs: f64,
        detected: f64,
    ) -> Self {
        for w in [masked, sdc, other, crashes, hangs, detected] {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight must be finite and non-negative, got {w}"
            );
        }
        ResilienceProfile {
            masked,
            sdc,
            other,
            crashes,
            hangs,
            detected,
        }
    }

    /// Records one outcome with weight 1.
    pub fn record(&mut self, outcome: Outcome) {
        self.record_weighted(outcome, 1.0);
    }

    /// Records one outcome with the given extrapolation weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn record_weighted(&mut self, outcome: Outcome, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be finite and non-negative, got {weight}"
        );
        match outcome {
            Outcome::Masked => self.masked += weight,
            Outcome::Sdc => self.sdc += weight,
            Outcome::Other(kind) => {
                self.other += weight;
                match kind {
                    OutcomeKind::Crash => self.crashes += weight,
                    OutcomeKind::Hang => self.hangs += weight,
                }
            }
            Outcome::Detected => self.detected += weight,
        }
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &ResilienceProfile) {
        self.masked += other.masked;
        self.sdc += other.sdc;
        self.other += other.other;
        self.crashes += other.crashes;
        self.hangs += other.hangs;
        self.detected += other.detected;
    }

    /// Total recorded weight across all four classes (the Eq. 1
    /// exhaustive population when the campaign covered every site).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.masked + self.sdc + self.other + self.detected
    }

    /// Masked weight.
    #[must_use]
    pub fn masked(&self) -> f64 {
        self.masked
    }

    /// SDC weight.
    #[must_use]
    pub fn sdc(&self) -> f64 {
        self.sdc
    }

    /// Other (crash + hang) weight.
    #[must_use]
    pub fn other(&self) -> f64 {
        self.other
    }

    /// Crash weight (subset of [`ResilienceProfile::other`]).
    #[must_use]
    pub fn crashes(&self) -> f64 {
        self.crashes
    }

    /// Hang weight (subset of [`ResilienceProfile::other`]).
    #[must_use]
    pub fn hangs(&self) -> f64 {
        self.hangs
    }

    /// Detected (DUE) weight — faults caught by an in-kernel detector.
    /// Zero for campaigns on unprotected kernels.
    #[must_use]
    pub fn detected(&self) -> f64 {
        self.detected
    }

    fn pct(&self, x: f64) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            100.0 * x / t
        }
    }

    /// Percentage of masked outcomes (0–100).
    #[must_use]
    pub fn pct_masked(&self) -> f64 {
        self.pct(self.masked)
    }

    /// Percentage of SDC outcomes (0–100).
    #[must_use]
    pub fn pct_sdc(&self) -> f64 {
        self.pct(self.sdc)
    }

    /// Percentage of other outcomes (0–100).
    #[must_use]
    pub fn pct_other(&self) -> f64 {
        self.pct(self.other)
    }

    /// Percentage of detected outcomes (0–100).
    #[must_use]
    pub fn pct_detected(&self) -> f64 {
        self.pct(self.detected)
    }

    /// `(masked%, sdc%, other%)` as a tuple.
    #[must_use]
    pub fn percentages(&self) -> (f64, f64, f64) {
        (self.pct_masked(), self.pct_sdc(), self.pct_other())
    }

    /// Largest absolute per-class percentage difference from `other` — the
    /// accuracy metric of Figure 9. Includes the detected class (which
    /// contributes zero on unprotected campaigns).
    #[must_use]
    pub fn max_abs_diff(&self, other: &ResilienceProfile) -> f64 {
        let (m1, s1, o1) = self.percentages();
        let (m2, s2, o2) = other.percentages();
        let d = (self.pct_detected() - other.pct_detected()).abs();
        (m1 - m2)
            .abs()
            .max((s1 - s2).abs())
            .max((o1 - o2).abs())
            .max(d)
    }

    /// Signed per-class percentage differences `(masked, sdc, other)`.
    #[must_use]
    pub fn diff(&self, other: &ResilienceProfile) -> (f64, f64, f64) {
        let (m1, s1, o1) = self.percentages();
        let (m2, s2, o2) = other.percentages();
        (m1 - m2, s1 - s2, o1 - o2)
    }
}

impl fmt::Display for ResilienceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The detected class only appears once a detector is in play;
        // unprotected campaigns keep the familiar three-class line.
        if self.detected == 0.0 {
            write!(
                f,
                "masked {:.2}% / sdc {:.2}% / other {:.2}% (n={:.0})",
                self.pct_masked(),
                self.pct_sdc(),
                self.pct_other(),
                self.total()
            )
        } else {
            write!(
                f,
                "masked {:.2}% / sdc {:.2}% / detected {:.2}% / other {:.2}% (n={:.0})",
                self.pct_masked(),
                self.pct_sdc(),
                self.pct_detected(),
                self.pct_other(),
                self.total()
            )
        }
    }
}

impl FromIterator<Outcome> for ResilienceProfile {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> Self {
        let mut p = ResilienceProfile::new();
        for o in iter {
            p.record(o);
        }
        p
    }
}

/// Five-number summary plus mean, for the box plots of Figures 2–3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl FiveNumber {
    /// Computes the summary of a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "five-number summary of empty sample");
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between order statistics (type-7).
            let h = p * (v.len() as f64 - 1.0);
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            v[lo] + (h - lo as f64) * (v[hi] - v[lo])
        };
        FiveNumber {
            min: v[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: v[v.len() - 1],
            mean: v.iter().sum::<f64>() / v.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages() {
        let p = ResilienceProfile::from_counts(50, 30, 20);
        assert!((p.pct_masked() - 50.0).abs() < 1e-12);
        assert!((p.pct_sdc() - 30.0).abs() < 1e-12);
        assert!((p.pct_other() - 20.0).abs() < 1e-12);
        assert_eq!(p.total(), 100.0);
    }

    #[test]
    fn weighted_extrapolation() {
        let mut p = ResilienceProfile::new();
        // One masked injection representing 300 threads, one SDC
        // representing 100.
        p.record_weighted(Outcome::Masked, 300.0);
        p.record_weighted(Outcome::Sdc, 100.0);
        assert!((p.pct_masked() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn other_kinds_tracked() {
        let mut p = ResilienceProfile::new();
        p.record(Outcome::CRASH);
        p.record(Outcome::HANG);
        p.record(Outcome::Masked);
        assert!((p.pct_other() - 66.666).abs() < 0.01);
    }

    #[test]
    fn empty_profile_has_zero_percentages() {
        let p = ResilienceProfile::new();
        assert_eq!(p.percentages(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn distance_metrics() {
        let a = ResilienceProfile::from_counts(60, 30, 10);
        let b = ResilienceProfile::from_counts(55, 33, 12);
        assert!((a.max_abs_diff(&b) - 5.0).abs() < 1e-12);
        let (dm, ds, do_) = a.diff(&b);
        assert!((dm - 5.0).abs() < 1e-12);
        assert!((ds + 3.0).abs() < 1e-12);
        assert!((do_ + 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ResilienceProfile::from_counts(1, 2, 3);
        a.merge(&ResilienceProfile::from_counts(9, 8, 7));
        assert_eq!(a.total(), 30.0);
        assert_eq!(a.masked(), 10.0);
    }

    #[test]
    fn from_iterator() {
        let p: ResilienceProfile = [Outcome::Masked, Outcome::Masked, Outcome::Sdc]
            .into_iter()
            .collect();
        assert_eq!(p.total(), 3.0);
        assert_eq!(p.masked(), 2.0);
    }

    #[test]
    fn five_number_summary() {
        let s = FiveNumber::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn negative_weight_rejected() {
        ResilienceProfile::new().record_weighted(Outcome::Masked, -1.0);
    }

    #[test]
    fn outcome_codes_round_trip() {
        for o in [
            Outcome::Masked,
            Outcome::Sdc,
            Outcome::CRASH,
            Outcome::HANG,
            Outcome::Detected,
        ] {
            assert_eq!(Outcome::from_code(o.code()), Some(o));
        }
        assert_eq!(Outcome::from_code(5), None);
    }

    #[test]
    fn from_parts_round_trips_bit_exactly() {
        let mut p = ResilienceProfile::new();
        p.record_weighted(Outcome::Masked, 0.1 + 0.2); // non-representable sums
        p.record_weighted(Outcome::Sdc, 1.0 / 3.0);
        p.record_weighted(Outcome::CRASH, 2.5);
        p.record_weighted(Outcome::HANG, 1e-9);
        p.record_weighted(Outcome::Detected, 0.7);
        let q = ResilienceProfile::from_parts(
            p.masked(),
            p.sdc(),
            p.other(),
            p.crashes(),
            p.hangs(),
            p.detected(),
        );
        assert_eq!(p, q);
    }

    #[test]
    fn detected_counts_toward_total() {
        let mut p = ResilienceProfile::new();
        p.record(Outcome::Masked);
        p.record(Outcome::Detected);
        p.record(Outcome::Detected);
        p.record(Outcome::Sdc);
        assert_eq!(p.total(), 4.0);
        assert_eq!(p.detected(), 2.0);
        assert!((p.pct_detected() - 50.0).abs() < 1e-12);
        // Four-class weights partition the population exactly.
        assert_eq!(p.masked() + p.sdc() + p.other() + p.detected(), p.total());
        assert!(format!("{p}").contains("detected 50.00%"));
    }
}
