//! No-op derive macros for the offline `serde` stub.
//!
//! Nothing in this workspace serializes at runtime — the derives exist so
//! type definitions stay source-compatible with upstream `serde` when the
//! real dependency is available. Emitting an empty token stream satisfies
//! `#[derive(Serialize, Deserialize)]` without generating any impls.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]` — accepted and ignored.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]` — accepted and ignored.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
