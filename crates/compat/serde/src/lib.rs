//! Offline stub of the `serde` facade.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! source compatibility with downstream tooling, but never serializes at
//! runtime, so marker traits plus no-op derive macros are sufficient when
//! crates.io is unreachable (see `[patch.crates-io]` in the root manifest).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
