//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro, range/tuple/vec/select strategies,
//! `any::<T>()`, `prop_map`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test PRNG (seeded from the
//! test name), so failures reproduce across runs. There is no shrinking:
//! a failing case panics with the formatted assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty => $via:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $via).wrapping_sub(self.start as $via);
                    let r = (rng.next_u64() as $via) % span;
                    self.start.wrapping_add(r as $t)
                }
            }
        )*};
    }

    impl_range_strategy_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u128, usize => u128,
        i8 => u64, i16 => u64, i32 => u64, i64 => u128, isize => u128
    );

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; the full bit domain is rarely useful.
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// `prop::sample::select(options)`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod test_runner {
    /// Per-test deterministic PRNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test's name, so each test has a stable stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The `proptest!` macro: runs each contained test function over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cases ($cfg).cases; $($rest)*);
    };
    (@with_cases $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases: u32 = $cases;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < cases {
                attempts += 1;
                assert!(
                    attempts <= cases.saturating_mul(16).max(1024),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cases $crate::test_runner::Config::default().cases; $($rest)*);
    };
}

/// `prop_assert!` — fails the current case (with formatting) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert_eq!` — fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// `prop_assume!` — rejects (skips) the current case when false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! Everything a `proptest!`-based test file needs in scope.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespaced strategy constructors (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..6), len in prop::collection::vec(any::<bool>(), 2..4)) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(len.len() >= 2 && len.len() < 4);
        }

        #[test]
        fn assume_rejects(v in 0u32..4) {
            prop_assume!(v != 3);
            prop_assert!(v < 3);
        }

        #[test]
        fn select_and_map(s in prop::sample::select(vec![2u32, 4, 8]).prop_map(|v| v * 2)) {
            prop_assert!(s == 4 || s == 8 || s == 16);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let s = 0u64..1_000_000;
        for _ in 0..64 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
