//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The container image has no crates.io access, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! manifest).
//!
//! Determinism is the only contract callers rely on (every call site seeds
//! explicitly via [`SeedableRng::seed_from_u64`]); the stream itself is a
//! SplitMix64-seeded xoshiro256** and does *not* match upstream `StdRng`.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `range` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Multiply-shift reduction; bias is negligible for the spans
                // used here and irrelevant to the deterministic contract.
                let wide = u128::from(rng.next_u64()).wrapping_mul(span);
                range.start.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_range(self, 0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (API stand-in for
    /// `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Chooses `amount` distinct elements (in selection order).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher-Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn spread_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let xs: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "selection must be without replacement");
        // Requesting more than available returns everything.
        assert_eq!(xs.choose_multiple(&mut rng, 99).count(), 50);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut xs: Vec<u32> = (0..32).collect();
        let mut rng = StdRng::seed_from_u64(4);
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
