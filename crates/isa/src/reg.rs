//! Register classes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of general-purpose registers per thread.
pub const NUM_GPRS: u8 = 128;
/// Number of predicate (condition-code) registers per thread.
pub const NUM_PREDS: u8 = 8;
/// Number of address-offset registers per thread.
pub const NUM_OFS: u8 = 4;
/// The general-purpose register hardwired to zero (`$r124` in PTXPlus).
pub const ZERO_GPR: u8 = 124;

/// Special read-only registers exposing the thread's position in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Special {
    /// `%tid.x` — thread index within the CTA, x dimension.
    TidX,
    /// `%tid.y` — thread index within the CTA, y dimension.
    TidY,
    /// `%tid.z` — thread index within the CTA, z dimension.
    TidZ,
    /// `%ntid.x` — CTA size, x dimension.
    NTidX,
    /// `%ntid.y` — CTA size, y dimension.
    NTidY,
    /// `%ctaid.x` — CTA index within the grid, x dimension.
    CtaIdX,
    /// `%ctaid.y` — CTA index within the grid, y dimension.
    CtaIdY,
    /// `%nctaid.x` — grid size, x dimension.
    NCtaIdX,
    /// `%nctaid.y` — grid size, y dimension.
    NCtaIdY,
}

impl Special {
    const ALL: [(Special, &'static str); 9] = [
        (Special::TidX, "%tid.x"),
        (Special::TidY, "%tid.y"),
        (Special::TidZ, "%tid.z"),
        (Special::NTidX, "%ntid.x"),
        (Special::NTidY, "%ntid.y"),
        (Special::CtaIdX, "%ctaid.x"),
        (Special::CtaIdY, "%ctaid.y"),
        (Special::NCtaIdX, "%nctaid.x"),
        (Special::NCtaIdY, "%nctaid.y"),
    ];

    /// Assembler spelling, e.g. `"%tid.x"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        Self::ALL
            .iter()
            .find(|(s, _)| *s == self)
            .expect("all variants listed")
            .1
    }

    /// Parses an assembler spelling.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.iter().find(|(_, n)| *n == name).map(|(s, _)| *s)
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A register reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Register {
    /// General-purpose 32-bit register `$rN`. `$r124` reads as zero and
    /// discards writes, matching PTXPlus.
    Gpr(u8),
    /// 4-bit predicate / condition-code register `$pN`.
    Pred(u8),
    /// Address-offset register `$ofsN` used in shared-memory operand
    /// addressing (`s[$ofs1+0x40]`).
    Ofs(u8),
    /// Special read-only register (`%tid.x`, `%ctaid.x`, ...).
    Special(Special),
    /// The write-discard output register `$o127`.
    Discard,
}

impl Register {
    /// Bit width of the register (used for fault-site accounting).
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            Register::Pred(_) => 4,
            Register::Discard => 0,
            _ => 32,
        }
    }

    /// Whether writes to this register are discarded (`$o127`, `$r124`).
    #[must_use]
    pub const fn is_discard(self) -> bool {
        matches!(self, Register::Discard | Register::Gpr(ZERO_GPR))
    }

    /// Parses an assembler register spelling (`$r5`, `$p0`, `$ofs2`,
    /// `$o127`, `%tid.x`).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        if let Some(sp) = Special::from_name(name) {
            return Some(Register::Special(sp));
        }
        let rest = name.strip_prefix('$')?;
        if rest == "o127" {
            return Some(Register::Discard);
        }
        if let Some(n) = rest.strip_prefix("ofs") {
            let idx: u8 = n.parse().ok()?;
            return (idx < NUM_OFS).then_some(Register::Ofs(idx));
        }
        if let Some(n) = rest.strip_prefix('r') {
            let idx: u8 = n.parse().ok()?;
            return (idx < NUM_GPRS).then_some(Register::Gpr(idx));
        }
        if let Some(n) = rest.strip_prefix('p') {
            let idx: u8 = n.parse().ok()?;
            return (idx < NUM_PREDS).then_some(Register::Pred(idx));
        }
        None
    }
}

impl fmt::Display for Register {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Register::Gpr(n) => write!(f, "$r{n}"),
            Register::Pred(n) => write!(f, "$p{n}"),
            Register::Ofs(n) => write!(f, "$ofs{n}"),
            Register::Special(s) => write!(f, "{s}"),
            Register::Discard => write!(f, "$o127"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_gpr() {
        assert_eq!(Register::from_name("$r0"), Some(Register::Gpr(0)));
        assert_eq!(Register::from_name("$r127"), Some(Register::Gpr(127)));
        assert_eq!(Register::from_name("$r128"), None);
        assert_eq!(Register::from_name("r5"), None);
    }

    #[test]
    fn parse_pred_ofs_discard() {
        assert_eq!(Register::from_name("$p3"), Some(Register::Pred(3)));
        assert_eq!(Register::from_name("$p8"), None);
        assert_eq!(Register::from_name("$ofs2"), Some(Register::Ofs(2)));
        assert_eq!(Register::from_name("$o127"), Some(Register::Discard));
    }

    #[test]
    fn parse_specials() {
        assert_eq!(
            Register::from_name("%tid.x"),
            Some(Register::Special(Special::TidX))
        );
        assert_eq!(
            Register::from_name("%nctaid.y"),
            Some(Register::Special(Special::NCtaIdY))
        );
        assert_eq!(Register::from_name("%tid.w"), None);
    }

    #[test]
    fn display_roundtrip() {
        for name in ["$r17", "$p0", "$ofs1", "$o127", "%ctaid.x"] {
            let reg = Register::from_name(name).unwrap();
            assert_eq!(reg.to_string(), name);
        }
    }

    #[test]
    fn discard_semantics() {
        assert!(Register::Discard.is_discard());
        assert!(Register::Gpr(ZERO_GPR).is_discard());
        assert!(!Register::Gpr(0).is_discard());
        assert_eq!(Register::Discard.bits(), 0);
        assert_eq!(Register::Pred(0).bits(), 4);
    }
}
