//! A frontend for (a subset of) real PTX, as emitted by `nvcc --ptx`.
//!
//! The paper's toolchain goes CUDA → PTX → PTXPlus (GPGPU-Sim's
//! register-allocated form). This module provides the same bridge for this
//! repository: it translates straightforward PTX kernels into the
//! PTXPlus-like IR the simulator executes, so workloads can come straight
//! from the CUDA compiler instead of being hand-written.
//!
//! # Supported subset
//!
//! * One `.entry` kernel per translation; `.param .u32/.u64/.f32`
//!   parameters (64-bit pointer parameters are truncated to the 32-bit
//!   address space of the simulator — fine for device images < 4 GiB).
//! * Virtual registers `%r*` (b32/s32/u32), `%f*` (f32), `%rd*` (b64,
//!   mapped onto 32-bit registers), `%p*` (predicates), and the special
//!   registers `%tid/%ntid/%ctaid/%nctaid`.
//! * The common instruction set: `mov ld st cvt cvta add sub mul mad fma
//!   div rem min max neg abs sqrt rsqrt rcp ex2 lg2 and or xor not shl shr
//!   setp selp bra bar.sync ret`.
//! * `.shared` array declarations (allocated after the kernel parameters).
//! * Guards `@%p` / `@!%p`, labels (`$L__BB0_2:`), `0f` hex-float
//!   immediates.
//!
//! Unsupported constructs (textures, atomics, vectors, `.local` spills,
//! calls, 64-bit arithmetic that actually needs 64 bits, ...) produce a
//! descriptive [`PtxError`] rather than silently wrong code.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::asm::assemble;
use crate::program::KernelProgram;

/// Shared-memory byte offset where `.shared` declarations are allocated
/// (above the parameter area).
const SHARED_BASE: u32 = 0x400;

/// Error from PTX translation, with the offending 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtxError {
    /// 1-based line in the PTX source.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for PtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ptx line {}: {}", self.line, self.message)
    }
}

impl Error for PtxError {}

fn err(line: usize, message: impl Into<String>) -> PtxError {
    PtxError {
        line,
        message: message.into(),
    }
}

/// Translation state: virtual-register and symbol maps.
struct Translator {
    /// Virtual register name → our register name.
    regs: BTreeMap<String, String>,
    next_gpr: u32,
    next_pred: u32,
    /// Parameter name → index.
    params: BTreeMap<String, u32>,
    /// Shared array name → byte offset.
    shared: BTreeMap<String, u32>,
    next_shared: u32,
    /// Generated PTXPlus-like lines.
    out: Vec<String>,
}

impl Translator {
    fn new() -> Self {
        Translator {
            regs: BTreeMap::new(),
            next_gpr: 1,
            next_pred: 0,
            params: BTreeMap::new(),
            shared: BTreeMap::new(),
            next_shared: SHARED_BASE,
            out: Vec::new(),
        }
    }

    /// Our register for a PTX virtual register.
    fn reg(&mut self, vreg: &str, line: usize) -> Result<String, PtxError> {
        if let Some(r) = self.regs.get(vreg) {
            return Ok(r.clone());
        }
        let name = if vreg.starts_with("%p") {
            let n = self.next_pred;
            if n >= 8 {
                return Err(err(line, "more than 8 predicate registers in use"));
            }
            self.next_pred += 1;
            format!("$p{n}")
        } else {
            let n = self.next_gpr;
            if n >= 120 {
                return Err(err(line, "more than 120 general registers in use"));
            }
            self.next_gpr += 1;
            format!("$r{n}")
        };
        self.regs.insert(vreg.to_owned(), name.clone());
        Ok(name)
    }

    /// Translates an operand: virtual register, special register, or
    /// immediate.
    fn operand(&mut self, op: &str, line: usize) -> Result<String, PtxError> {
        let op = op.trim();
        if let Some(rest) = op.strip_prefix('-') {
            return Ok(format!("-{}", self.operand(rest, line)?));
        }
        if op.starts_with("%tid")
            || op.starts_with("%ntid")
            || op.starts_with("%ctaid")
            || op.starts_with("%nctaid")
        {
            return Ok(op.to_owned());
        }
        if op.starts_with('%') {
            return self.reg(op, line);
        }
        // Immediates pass through (hex, decimal, 0f-floats share syntax).
        Ok(op.to_owned())
    }

    /// Translates a memory operand `[%rd4+8]` / `[param]` / `[arr+4]` into
    /// `(space_prefix, inner)` of our syntax.
    fn address(&mut self, inner: &str, space: &str, line: usize) -> Result<String, PtxError> {
        let (base, offset) = match inner.split_once('+') {
            Some((b, o)) => (
                b.trim(),
                o.trim()
                    .parse::<i64>()
                    .map_err(|_| err(line, format!("bad address offset `{o}`")))?,
            ),
            None => (inner.trim(), 0),
        };
        if let Some(&idx) = self.params.get(base) {
            // Parameter area lives at the bottom of shared memory.
            let addr = crate::PARAM_BASE + 4 * idx + offset as u32;
            return Ok(format!("s[{addr:#06x}]"));
        }
        if let Some(&addr) = self.shared.get(base) {
            let addr = addr + offset as u32;
            return Ok(format!("s[{addr:#06x}]"));
        }
        if base.starts_with('%') {
            let reg = self.reg(base, line)?;
            let prefix = match space {
                "shared" => "s",
                "local" => "l",
                _ => "g",
            };
            if offset == 0 {
                return Ok(format!("{prefix}[{reg}]"));
            }
            return Ok(format!("{prefix}[{reg}+{offset}]"));
        }
        Err(err(line, format!("unknown address base `{base}`")))
    }

    fn emit(&mut self, s: String) {
        self.out.push(s);
    }
}

/// Maps a PTX scalar type suffix onto ours (64-bit types narrow to 32-bit).
fn map_type(t: &str, line: usize) -> Result<&'static str, PtxError> {
    Ok(match t {
        "u16" => "u16",
        "s16" => "s16",
        "u32" | "b32" | "u64" | "b64" => "u32",
        "s32" | "s64" => "s32",
        "f32" => "f32",
        "pred" => "pred",
        other => {
            return Err(err(
                line,
                format!("unsupported PTX type `.{other}` (f64/vectors are out of scope)"),
            ))
        }
    })
}

/// Sanitizes a PTX label (`$L__BB0_2`) into our label grammar.
fn clean_label(l: &str) -> String {
    let cleaned: String = l
        .chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("L{cleaned}")
    } else {
        cleaned
    }
}

/// Translates a PTX kernel into a [`KernelProgram`].
///
/// # Errors
///
/// Returns a [`PtxError`] for constructs outside the supported subset, and
/// wraps assembler errors on the generated IR (which indicate a translator
/// bug, with the generated text attached).
pub fn translate_ptx(source: &str) -> Result<KernelProgram, PtxError> {
    let mut tr = Translator::new();
    let mut kernel_name = String::from("ptx_kernel");
    let mut in_body = false;
    let mut saw_entry = false;

    // Join the parameter list (it may span lines between `(` and `)`).
    let mut pending_params: Option<String> = None;

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw.trim();
        if let Some(pos) = line.find("//") {
            line = line[..pos].trim_end();
        }
        if line.is_empty() {
            continue;
        }

        // Parameter-list accumulation.
        if let Some(acc) = &mut pending_params {
            acc.push(' ');
            acc.push_str(line);
            if line.contains(')') {
                let acc = pending_params.take().expect("accumulating");
                parse_params(&acc, &mut tr, line_no)?;
            }
            continue;
        }

        if line.starts_with(".version")
            || line.starts_with(".target")
            || line.starts_with(".address_size")
            || line.starts_with("{")
        {
            if line.starts_with('{') {
                in_body = true;
            }
            continue;
        }
        if line.contains(".entry") {
            saw_entry = true;
            // `.visible .entry name(` — name up to `(` or end.
            let after = line.split(".entry").nth(1).unwrap_or("").trim();
            let name_end = after.find(['(', ' ']).unwrap_or(after.len());
            kernel_name = after[..name_end].trim().to_owned();
            let rest = &after[name_end..];
            if rest.contains('(') && !rest.contains(')') {
                pending_params = Some(rest.to_owned());
            } else if rest.contains('(') {
                parse_params(rest, &mut tr, line_no)?;
            }
            continue;
        }
        if !saw_entry {
            continue;
        }
        if line.starts_with('}') {
            break;
        }
        if line.starts_with(".reg") {
            continue; // classes come from the %-prefix at use sites
        }
        if line.starts_with(".shared") {
            // `.shared .align 4 .b8 name[256];`
            let decl = line.trim_end_matches(';');
            let Some(bracket) = decl.find('[') else {
                return Err(err(line_no, "malformed .shared declaration"));
            };
            let name = decl[..bracket]
                .split_whitespace()
                .last()
                .unwrap_or("")
                .to_owned();
            let size: u32 = decl[bracket + 1..decl.len() - 1]
                .trim()
                .parse()
                .map_err(|_| err(line_no, "bad .shared size"))?;
            tr.shared.insert(name, tr.next_shared);
            tr.next_shared += size.next_multiple_of(4);
            continue;
        }
        if line.starts_with('{') {
            in_body = true;
            continue;
        }
        if !in_body && !line.contains(':') && !saw_entry {
            continue;
        }
        translate_statement(line, &mut tr, line_no)?;
    }

    if !saw_entry {
        return Err(err(0, "no .entry kernel found"));
    }
    // A PTX kernel always ends in `ret`; make sure the body is terminated
    // even if the translator stopped at `}`.
    if tr
        .out
        .last()
        .is_none_or(|l| !l.trim_start().starts_with("exit"))
    {
        tr.out.push("exit".to_owned());
    }
    let body = tr.out.join("\n");
    assemble(kernel_name, &body).map_err(|e| {
        err(
            e.line,
            format!("translator produced invalid IR ({e})\n--- generated ---\n{body}"),
        )
    })
}

fn parse_params(list: &str, tr: &mut Translator, line_no: usize) -> Result<(), PtxError> {
    let inner = list
        .trim_start_matches(|c| c != '(')
        .trim_start_matches('(')
        .split(')')
        .next()
        .unwrap_or("");
    for (i, param) in inner.split(',').enumerate() {
        let param = param.trim();
        if param.is_empty() {
            continue;
        }
        if param.contains(".align") || param.contains('[') {
            return Err(err(line_no, "array/aligned parameters are unsupported"));
        }
        let name = param
            .split_whitespace()
            .last()
            .ok_or_else(|| err(line_no, format!("malformed parameter `{param}`")))?;
        tr.params.insert(name.to_owned(), i as u32);
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn translate_statement(line: &str, tr: &mut Translator, line_no: usize) -> Result<(), PtxError> {
    let mut rest = line.trim().trim_end_matches(';').trim();
    // Labels.
    while let Some(colon) = rest.find(':') {
        let (label, tail) = rest.split_at(colon);
        if label.contains(char::is_whitespace) {
            break;
        }
        tr.emit(format!("{}:", clean_label(label)));
        rest = tail[1..].trim();
    }
    if rest.is_empty() {
        return Ok(());
    }
    // Guard.
    let mut guard = String::new();
    if let Some(after) = rest.strip_prefix('@') {
        let (g, tail) = after
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line_no, "guard with no instruction"))?;
        let (neg, vreg) = match g.strip_prefix('!') {
            Some(v) => (true, v),
            None => (false, g),
        };
        let p = tr.reg(vreg, line_no)?;
        // PTX "predicate true" = our zero-flag clear (`ne`).
        guard = format!("@{p}.{} ", if neg { "eq" } else { "ne" });
        rest = tail.trim();
    }

    let (head, tail) = match rest.split_once(char::is_whitespace) {
        Some((h, t)) => (h, t.trim()),
        None => (rest, ""),
    };
    let parts: Vec<&str> = head.split('.').collect();
    let opcode = parts[0];
    let ops: Vec<&str> = if tail.is_empty() {
        Vec::new()
    } else {
        tail.split(',').map(str::trim).collect()
    };

    match opcode {
        "ret" | "exit" => tr.emit(format!("{guard}exit")),
        "bar" => tr.emit("bar.sync 0x0".to_owned()),
        "bra" => {
            let target = ops
                .first()
                .ok_or_else(|| err(line_no, "bra needs a target"))?;
            tr.emit(format!("{guard}bra {}", clean_label(target)));
        }
        "cvta" => {
            // Address-space cast: a register-to-register move here.
            let d = tr.operand(
                ops.first().ok_or_else(|| err(line_no, "cvta dest"))?,
                line_no,
            )?;
            let a = tr.operand(ops.get(1).ok_or_else(|| err(line_no, "cvta src"))?, line_no)?;
            tr.emit(format!("{guard}mov.u32 {d}, {a}"));
        }
        "ld" | "st" => {
            let space = parts.get(1).copied().unwrap_or("global");
            if space == "volatile" {
                return Err(err(line_no, "volatile accesses are unsupported"));
            }
            let ty = map_type(parts.last().unwrap_or(&"u32"), line_no)?;
            if space == "param" {
                let d = tr.operand(ops.first().ok_or_else(|| err(line_no, "ld dest"))?, line_no)?;
                let addr = mem_inner(ops.get(1).copied(), line_no)?;
                let a = tr.address(addr, "shared", line_no)?;
                tr.emit(format!("{guard}mov.{ty} {d}, {a}"));
            } else if opcode == "ld" {
                let d = tr.operand(ops.first().ok_or_else(|| err(line_no, "ld dest"))?, line_no)?;
                let addr = mem_inner(ops.get(1).copied(), line_no)?;
                let a = tr.address(addr, space, line_no)?;
                if space == "shared" {
                    tr.emit(format!("{guard}mov.{ty} {d}, {a}"));
                } else {
                    tr.emit(format!("{guard}ld.global.{ty} {d}, {a}"));
                }
            } else {
                let addr = mem_inner(ops.first().copied(), line_no)?;
                let a = tr.address(addr, space, line_no)?;
                let v = tr.operand(ops.get(1).ok_or_else(|| err(line_no, "st value"))?, line_no)?;
                if space == "shared" {
                    tr.emit(format!("{guard}mov.{ty} {a}, {v}"));
                } else {
                    tr.emit(format!("{guard}st.global.{ty} {a}, {v}"));
                }
            }
        }
        "setp" => {
            // setp.CMP.TY %p, a, b
            let cmp = parts
                .get(1)
                .copied()
                .ok_or_else(|| err(line_no, "setp needs a comparison"))?;
            if !["eq", "ne", "lt", "le", "gt", "ge"].contains(&cmp) {
                return Err(err(
                    line_no,
                    format!("unsupported setp comparison `.{cmp}`"),
                ));
            }
            let ty = map_type(parts.last().unwrap_or(&"s32"), line_no)?;
            let p = tr.operand(
                ops.first().ok_or_else(|| err(line_no, "setp dest"))?,
                line_no,
            )?;
            let a = tr.operand(ops.get(1).ok_or_else(|| err(line_no, "setp lhs"))?, line_no)?;
            let b = tr.operand(ops.get(2).ok_or_else(|| err(line_no, "setp rhs"))?, line_no)?;
            tr.emit(format!("{guard}set.{cmp}.{ty}.{ty} {p}/$o127, {a}, {b}"));
        }
        "selp" => {
            let ty = map_type(parts.last().unwrap_or(&"b32"), line_no)?;
            let d = tr.operand(
                ops.first().ok_or_else(|| err(line_no, "selp dest"))?,
                line_no,
            )?;
            let a = tr.operand(ops.get(1).ok_or_else(|| err(line_no, "selp a"))?, line_no)?;
            let b = tr.operand(ops.get(2).ok_or_else(|| err(line_no, "selp b"))?, line_no)?;
            let p = tr.operand(
                ops.get(3).ok_or_else(|| err(line_no, "selp pred"))?,
                line_no,
            )?;
            tr.emit(format!("{guard}selp.ne.{ty} {d}, {a}, {b}, {p}"));
        }
        "mov" | "cvt" | "add" | "sub" | "mul" | "mad" | "fma" | "div" | "rem" | "min" | "max"
        | "neg" | "abs" | "sqrt" | "rsqrt" | "rcp" | "ex2" | "lg2" | "and" | "or" | "xor"
        | "not" | "shl" | "shr" => {
            // Map the opcode and type modifiers.
            let mut out_op = match opcode {
                "fma" => "mad".to_owned(),
                o => o.to_owned(),
            };
            let mut types = Vec::new();
            let mut wide = false;
            for m in &parts[1..] {
                match *m {
                    "lo" => {}
                    "hi" => out_op.push_str(".hi"),
                    "wide" => wide = true,
                    "rn" | "rz" | "rm" | "rp" | "approx" | "ftz" | "full" | "sat" | "uni"
                    | "to" | "global" => {}
                    t => types.push(map_type(t, line_no)?),
                }
            }
            // `mul.wide.s32 %rd, %r, %r`: the 64-bit product truncated to
            // 32 bits equals the plain 32-bit product, so `wide` only
            // survives for 16-bit sources.
            if wide {
                if types.last().copied() == Some("u16") || types.last().copied() == Some("s16") {
                    out_op.push_str(".wide");
                } else {
                    types = vec![if types.last().copied() == Some("s32") {
                        "s32"
                    } else {
                        "u32"
                    }];
                }
            }
            let ty_suffix = match types.as_slice() {
                [] => ".u32".to_owned(),
                [t] => format!(".{t}"),
                [a, b] => format!(".{a}.{b}"),
                _ => return Err(err(line_no, "too many type modifiers")),
            };
            let mut translated = Vec::new();
            for op in &ops {
                translated.push(tr.operand(op, line_no)?);
            }
            tr.emit(format!(
                "{guard}{out_op}{ty_suffix} {}",
                translated.join(", ")
            ));
        }
        other => {
            return Err(err(
                line_no,
                format!(
                "unsupported PTX instruction `{other}` (atomics/textures/calls are out of scope)"
            ),
            ))
        }
    }
    Ok(())
}

fn mem_inner(op: Option<&str>, line_no: usize) -> Result<&str, PtxError> {
    let op = op.ok_or_else(|| err(line_no, "missing memory operand"))?;
    let op = op.trim();
    if !op.starts_with('[') || !op.ends_with(']') {
        return Err(err(line_no, format!("`{op}` is not a memory operand")));
    }
    Ok(op[1..op.len() - 1].trim())
}
