//! Instruction representation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::operand::{MemRef, Operand};
use crate::reg::Register;
use crate::ty::ScalarType;

/// Operation code.
///
/// The set covers everything the Rodinia/Polybench kernels of the paper
/// need, in PTXPlus spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Opcode {
    /// Register/memory move (PTXPlus uses `mov` with memory operands for
    /// shared-memory loads and stores).
    Mov,
    /// Explicit load (`ld.global.u32 $r2, [$r2]`).
    Ld,
    /// Explicit store (`st.global.u32 [$r2], $r3`).
    St,
    /// Type conversion (also used for register-negation:
    /// `cvt.s32.s32 $r2, -$r2`).
    Cvt,
    /// Integer/float addition.
    Add,
    /// Integer/float subtraction.
    Sub,
    /// Multiplication. `wide` multiplies two 16-bit halves into 32 bits;
    /// `hi` returns the upper half of the full product.
    Mul,
    /// Multiply-add (`mad.wide.u16 d, a, b, c` = `a * b + c`).
    Mad,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Reciprocal (`rcp.f32`).
    Rcp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsqrt,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Shift left.
    Shl,
    /// Shift right (arithmetic for signed types).
    Shr,
    /// Compare-and-set: writes an all-ones/zero boolean to the GPR
    /// destination and condition codes to the predicate destination
    /// (`set.eq.s32.s32 $p0/$o127, $r6, $r1`).
    Set,
    /// Select on predicate test (`selp.u32 d, a, b, $p0`, selects `a` when
    /// the guard test passes).
    Selp,
    /// Branch (guarded or unconditional).
    Bra,
    /// Reconvergence-point marker; a no-op for functional simulation.
    Ssy,
    /// CTA-wide barrier (`bar.sync 0`).
    Bar,
    /// Return from the kernel.
    Ret,
    /// Predicated return (`@$p0.eq retp`).
    Retp,
    /// Thread exit.
    Exit,
    /// Detected-error exit: terminates the whole launch with a
    /// detection fault (the DMR hardening pass branches here on a
    /// shadow/original mismatch).
    Trap,
    /// No operation.
    Nop,
}

impl Opcode {
    const NAMES: [(Opcode, &'static str); 36] = [
        (Opcode::Mov, "mov"),
        (Opcode::Ld, "ld"),
        (Opcode::St, "st"),
        (Opcode::Cvt, "cvt"),
        (Opcode::Add, "add"),
        (Opcode::Sub, "sub"),
        (Opcode::Mul, "mul"),
        (Opcode::Mad, "mad"),
        (Opcode::Div, "div"),
        (Opcode::Rem, "rem"),
        (Opcode::Min, "min"),
        (Opcode::Max, "max"),
        (Opcode::Abs, "abs"),
        (Opcode::Neg, "neg"),
        (Opcode::Rcp, "rcp"),
        (Opcode::Sqrt, "sqrt"),
        (Opcode::Rsqrt, "rsqrt"),
        (Opcode::Ex2, "ex2"),
        (Opcode::Lg2, "lg2"),
        (Opcode::And, "and"),
        (Opcode::Or, "or"),
        (Opcode::Xor, "xor"),
        (Opcode::Not, "not"),
        (Opcode::Shl, "shl"),
        (Opcode::Shr, "shr"),
        (Opcode::Set, "set"),
        (Opcode::Selp, "selp"),
        (Opcode::Bra, "bra"),
        (Opcode::Ssy, "ssy"),
        (Opcode::Bar, "bar"),
        (Opcode::Ret, "ret"),
        (Opcode::Retp, "retp"),
        (Opcode::Exit, "exit"),
        (Opcode::Trap, "trap"),
        (Opcode::Nop, "nop"),
        (Opcode::Bar, "bar.sync"),
    ];

    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        Self::NAMES
            .iter()
            .find(|(op, _)| *op == self)
            .expect("all variants listed")
            .1
    }

    /// Parses an assembler mnemonic.
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Self::NAMES.iter().find(|(_, n)| *n == s).map(|(op, _)| *op)
    }

    /// Whether the opcode is a control-flow instruction.
    #[must_use]
    pub const fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::Bra | Opcode::Ret | Opcode::Retp | Opcode::Exit | Opcode::Trap | Opcode::Bar
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison operator of a [`Opcode::Set`] instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    const NAMES: [(CmpOp, &'static str); 6] = [
        (CmpOp::Eq, "eq"),
        (CmpOp::Ne, "ne"),
        (CmpOp::Lt, "lt"),
        (CmpOp::Le, "le"),
        (CmpOp::Gt, "gt"),
        (CmpOp::Ge, "ge"),
    ];

    /// Assembler spelling (`eq`, `ne`, ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        Self::NAMES
            .iter()
            .find(|(c, _)| *c == self)
            .expect("all variants listed")
            .1
    }

    /// Parses an assembler spelling.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::NAMES.iter().find(|(_, n)| *n == s).map(|(c, _)| *c)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Condition-code test of an instruction guard (`@$p0.eq ...`).
///
/// Predicate registers hold 4 condition-code bits (zero, sign, carry,
/// overflow) set by the most recent instruction that targeted them. A guard
/// test reads those bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredTest {
    /// Zero flag set (last result was zero).
    Eq,
    /// Zero flag clear.
    Ne,
    /// Sign flag set.
    Lt,
    /// Sign or zero flag set.
    Le,
    /// Neither sign nor zero flag set.
    Gt,
    /// Sign flag clear.
    Ge,
}

impl PredTest {
    const NAMES: [(PredTest, &'static str); 6] = [
        (PredTest::Eq, "eq"),
        (PredTest::Ne, "ne"),
        (PredTest::Lt, "lt"),
        (PredTest::Le, "le"),
        (PredTest::Gt, "gt"),
        (PredTest::Ge, "ge"),
    ];

    /// Assembler spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        Self::NAMES
            .iter()
            .find(|(c, _)| *c == self)
            .expect("all variants listed")
            .1
    }

    /// Parses an assembler spelling.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Self> {
        Self::NAMES.iter().find(|(_, n)| *n == s).map(|(c, _)| *c)
    }
}

impl fmt::Display for PredTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Instruction guard: `@$pN.test`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Guard {
    /// Predicate register index.
    pub pred: u8,
    /// Condition-code test.
    pub test: PredTest,
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@$p{}.{}", self.pred, self.test)
    }
}

/// A write destination: a register or a memory location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dest {
    /// Register destination.
    Reg(Register),
    /// Memory destination (PTXPlus `mov.u32 s[$ofs3+0x440], $r2` and `st`).
    Mem(MemRef),
}

impl Dest {
    /// The destination register, if this is a register destination.
    #[must_use]
    pub const fn register(&self) -> Option<Register> {
        match self {
            Dest::Reg(r) => Some(*r),
            Dest::Mem(_) => None,
        }
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Reg(r) => write!(f, "{r}"),
            Dest::Mem(m) => write!(f, "{m}"),
        }
    }
}

/// A decoded instruction.
///
/// Fields are public in the spirit of a passive data structure: the
/// assembler builds them, the simulator interprets them and the pruning
/// stages inspect them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Optional guard (`@$p0.eq`).
    pub guard: Option<Guard>,
    /// Operation.
    pub opcode: Opcode,
    /// Operation type (`.u32`, `.f32`, ...).
    pub ty: ScalarType,
    /// Source type for two-type operations (`cvt.u32.u16`,
    /// `set.eq.s32.s32`). Equal to [`Instruction::ty`] otherwise.
    pub src_ty: ScalarType,
    /// Comparison operator for [`Opcode::Set`].
    pub cmp: Option<CmpOp>,
    /// `mul.wide` / `mad.wide`: 16-bit × 16-bit → 32-bit.
    pub wide: bool,
    /// `mul.hi`: upper 32 bits of the full product.
    pub hi: bool,
    /// Destinations (up to two: `$p0|$r1`).
    pub dst: [Option<Dest>; 2],
    /// Source operands (up to three for `mad`/`selp`).
    pub src: [Option<Operand>; 3],
    /// Resolved branch target: an instruction index into the program.
    pub target: Option<usize>,
}

impl Instruction {
    /// Creates a blank instruction of the given opcode with `u32` type and
    /// no operands; used by the assembler and by tests.
    #[must_use]
    pub fn new(opcode: Opcode) -> Self {
        Instruction {
            guard: None,
            opcode,
            ty: ScalarType::U32,
            src_ty: ScalarType::U32,
            cmp: None,
            wide: false,
            hi: false,
            dst: [None, None],
            src: [None, None, None],
            target: None,
        }
    }

    /// Iterates over the source operands that are present.
    pub fn sources(&self) -> impl Iterator<Item = &Operand> {
        self.src.iter().flatten()
    }

    /// Iterates over the destinations that are present.
    pub fn dests(&self) -> impl Iterator<Item = &Dest> {
        self.dst.iter().flatten()
    }

    /// Total number of *destination-register* bits of this instruction — the
    /// `bit(t, i)` term of Equation (1). Write-discard destinations
    /// (`$o127`, `$r124`) and memory destinations contribute nothing;
    /// predicate destinations contribute 4 bits; general-purpose
    /// destinations contribute the operation width.
    #[must_use]
    pub fn dest_bits(&self) -> u32 {
        self.dests()
            .filter_map(Dest::register)
            .map(|r| self.register_dest_bits(r))
            .sum()
    }

    /// Bit width contributed by one destination register of this
    /// instruction.
    #[must_use]
    pub fn register_dest_bits(&self, reg: Register) -> u32 {
        match reg {
            Register::Pred(_) => 4,
            r if r.is_discard() => 0,
            _ => {
                if self.wide {
                    32
                } else {
                    self.ty.bits()
                }
            }
        }
    }

    /// Whether this instruction can transfer control (including falling out
    /// of the kernel).
    #[must_use]
    pub const fn is_control(&self) -> bool {
        self.opcode.is_control()
    }

    /// Whether this instruction is a branch with a resolved target.
    #[must_use]
    pub const fn is_branch(&self) -> bool {
        matches!(self.opcode, Opcode::Bra)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "{g} ")?;
        }
        write!(f, "{}", self.opcode)?;
        if let Some(cmp) = self.cmp {
            write!(f, ".{cmp}")?;
        }
        if self.wide {
            write!(f, ".wide")?;
        }
        if self.hi {
            write!(f, ".hi")?;
        }
        match self.opcode {
            Opcode::Bra
            | Opcode::Ssy
            | Opcode::Bar
            | Opcode::Ret
            | Opcode::Retp
            | Opcode::Exit
            | Opcode::Trap
            | Opcode::Nop => {}
            Opcode::Ld | Opcode::St => write!(f, ".global.{}", self.ty)?,
            Opcode::Cvt | Opcode::Set => write!(f, ".{}.{}", self.ty, self.src_ty)?,
            _ => write!(f, ".{}", self.ty)?,
        }
        let mut sep = " ";
        let dests: Vec<_> = self.dests().collect();
        if dests.len() == 2 {
            write!(f, " {}|{}", dests[0], dests[1])?;
            sep = ", ";
        } else if let Some(d) = dests.first() {
            write!(f, " {d}")?;
            sep = ", ";
        }
        for s in self.sources() {
            if matches!(self.opcode, Opcode::Ld) || matches!(self.opcode, Opcode::St) {
                if let Operand::Mem(m) = s {
                    // ld/st spell their memory operand in brackets without
                    // the space prefix.
                    if let Some(base) = m.base {
                        if m.offset == 0 {
                            write!(f, "{sep}[{base}]")?;
                        } else {
                            write!(f, "{sep}[{base}+{:#06x}]", m.offset)?;
                        }
                    } else {
                        write!(f, "{sep}[{:#010x}]", m.offset)?;
                    }
                    sep = ", ";
                    continue;
                }
            }
            write!(f, "{sep}{s}")?;
            sep = ", ";
        }
        if let Some(t) = self.target {
            write!(f, "{sep}@{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{MemRef, MemSpace};

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            Opcode::Mov,
            Opcode::Mad,
            Opcode::Set,
            Opcode::Bra,
            Opcode::Bar,
            Opcode::Exit,
        ] {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        // `bar.sync` is an accepted alias.
        assert_eq!(Opcode::from_mnemonic("bar.sync"), Some(Opcode::Bar));
        assert_eq!(Opcode::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn dest_bits_gpr() {
        let mut i = Instruction::new(Opcode::Add);
        i.dst[0] = Some(Dest::Reg(Register::Gpr(3)));
        assert_eq!(i.dest_bits(), 32);
        i.ty = ScalarType::U16;
        assert_eq!(i.dest_bits(), 16);
        i.wide = true;
        assert_eq!(i.dest_bits(), 32, "wide ops produce 32-bit results");
    }

    #[test]
    fn dest_bits_pred_and_dual() {
        let mut i = Instruction::new(Opcode::Set);
        i.dst[0] = Some(Dest::Reg(Register::Pred(0)));
        i.dst[1] = Some(Dest::Reg(Register::Discard));
        assert_eq!(i.dest_bits(), 4, "pred + discard = 4 bits");
        i.dst[1] = Some(Dest::Reg(Register::Gpr(1)));
        assert_eq!(i.dest_bits(), 36, "pred + gpr = 36 bits");
    }

    #[test]
    fn dest_bits_store_is_zero() {
        let mut i = Instruction::new(Opcode::St);
        i.dst[0] = Some(Dest::Mem(MemRef::relative(
            MemSpace::Global,
            Register::Gpr(2),
            0,
        )));
        assert_eq!(i.dest_bits(), 0);
    }

    #[test]
    fn display_basic() {
        let mut i = Instruction::new(Opcode::Add);
        i.dst[0] = Some(Dest::Reg(Register::Gpr(3)));
        i.src[0] = Some(Operand::neg_reg(Register::Gpr(3)));
        i.src[1] = Some(Operand::Imm(0x100));
        assert_eq!(i.to_string(), "add.u32 $r3, -$r3, 0x00000100");
    }

    #[test]
    fn display_guarded_branch() {
        let mut i = Instruction::new(Opcode::Bra);
        i.guard = Some(Guard {
            pred: 0,
            test: PredTest::Eq,
        });
        i.target = Some(17);
        assert_eq!(i.to_string(), "@$p0.eq bra @17");
    }
}
