//! Instruction operands: registers (with half-word selection and negation),
//! immediates and memory references.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::reg::Register;

/// Memory address space of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device-wide global memory (`g[...]`).
    Global,
    /// Per-CTA shared memory (`s[...]`). Kernel parameters are pre-loaded at
    /// the bottom of shared memory, PTXPlus-style.
    Shared,
    /// Per-thread local memory (`l[...]`).
    Local,
}

impl MemSpace {
    /// Assembler prefix character.
    #[must_use]
    pub const fn prefix(self) -> char {
        match self {
            MemSpace::Global => 'g',
            MemSpace::Shared => 's',
            MemSpace::Local => 'l',
        }
    }
}

/// Half-word selection on a 32-bit register operand (`$r1.lo` / `$r1.hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Half {
    /// Bits `[15:0]`.
    Lo,
    /// Bits `[31:16]`.
    Hi,
}

/// A memory reference `space[base + offset]`.
///
/// `base` may be a general-purpose or offset register; `offset` is a byte
/// offset added to the base. Absolute addressing uses `base = None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Address space.
    pub space: MemSpace,
    /// Optional base register (`$rN` or `$ofsN`).
    pub base: Option<Register>,
    /// Constant byte offset.
    pub offset: u32,
}

impl MemRef {
    /// Absolute reference `space[offset]`.
    #[must_use]
    pub const fn absolute(space: MemSpace, offset: u32) -> Self {
        MemRef {
            space,
            base: None,
            offset,
        }
    }

    /// Register-relative reference `space[base + offset]`.
    #[must_use]
    pub const fn relative(space: MemSpace, base: Register, offset: u32) -> Self {
        MemRef {
            space,
            base: Some(base),
            offset,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.space.prefix())?;
        match (self.base, self.offset) {
            (None, off) => write!(f, "{off:#010x}")?,
            (Some(base), 0) => write!(f, "{base}")?,
            (Some(base), off) => write!(f, "{base}+{off:#06x}")?,
        }
        write!(f, "]")
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Register source, optionally half-word selected and/or negated
    /// (`-$r3`, `$r1.lo`).
    Reg {
        /// The register read.
        reg: Register,
        /// Optional half-word selection.
        half: Option<Half>,
        /// Arithmetic negation of the fetched value.
        neg: bool,
    },
    /// 32-bit immediate (raw bits; interpretation depends on the operation
    /// type).
    Imm(u32),
    /// Memory source (PTXPlus allows memory operands directly in ALU
    /// instructions, e.g. `add.u32 $r3, s[0x10], $r1`).
    Mem(MemRef),
}

impl Operand {
    /// Plain register operand.
    #[must_use]
    pub const fn reg(reg: Register) -> Self {
        Operand::Reg {
            reg,
            half: None,
            neg: false,
        }
    }

    /// Negated register operand (`-$rN`).
    #[must_use]
    pub const fn neg_reg(reg: Register) -> Self {
        Operand::Reg {
            reg,
            half: None,
            neg: true,
        }
    }

    /// Half-word register operand (`$rN.lo` / `$rN.hi`).
    #[must_use]
    pub const fn half_reg(reg: Register, half: Half) -> Self {
        Operand::Reg {
            reg,
            half: Some(half),
            neg: false,
        }
    }

    /// The register read by this operand, if any.
    #[must_use]
    pub const fn register(&self) -> Option<Register> {
        match self {
            Operand::Reg { reg, .. } => Some(*reg),
            Operand::Mem(m) => m.base,
            Operand::Imm(_) => None,
        }
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<Register> for Operand {
    fn from(reg: Register) -> Self {
        Operand::reg(reg)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Self {
        Operand::Mem(m)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg { reg, half, neg } => {
                if *neg {
                    write!(f, "-")?;
                }
                write!(f, "{reg}")?;
                match half {
                    Some(Half::Lo) => write!(f, ".lo"),
                    Some(Half::Hi) => write!(f, ".hi"),
                    None => Ok(()),
                }
            }
            Operand::Imm(v) => write!(f, "{v:#010x}"),
            Operand::Mem(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Register;

    #[test]
    fn memref_display() {
        let abs = MemRef::absolute(MemSpace::Shared, 0x10);
        assert_eq!(abs.to_string(), "s[0x00000010]");
        let rel = MemRef::relative(MemSpace::Shared, Register::Ofs(2), 0x40);
        assert_eq!(rel.to_string(), "s[$ofs2+0x0040]");
        let reg = MemRef::relative(MemSpace::Global, Register::Gpr(2), 0);
        assert_eq!(reg.to_string(), "g[$r2]");
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::reg(Register::Gpr(3)).to_string(), "$r3");
        assert_eq!(Operand::neg_reg(Register::Gpr(3)).to_string(), "-$r3");
        assert_eq!(
            Operand::half_reg(Register::Gpr(1), Half::Lo).to_string(),
            "$r1.lo"
        );
        assert_eq!(Operand::Imm(0x100).to_string(), "0x00000100");
    }

    #[test]
    fn operand_register_extraction() {
        assert_eq!(
            Operand::reg(Register::Gpr(3)).register(),
            Some(Register::Gpr(3))
        );
        assert_eq!(Operand::Imm(0).register(), None);
        let m = Operand::Mem(MemRef::relative(MemSpace::Global, Register::Gpr(2), 0));
        assert_eq!(m.register(), Some(Register::Gpr(2)));
    }
}
