//! Text assembler for the PTXPlus-like syntax used throughout the paper.
//!
//! Grammar, per line (comments start with `//` or `#`):
//!
//! ```text
//! [label:] [@$pN.test] mnemonic[.modifiers...] [operand {, operand}]
//! ```
//!
//! Examples accepted verbatim from the paper's Figure 5:
//!
//! ```text
//! shl.u32 $r3, s[0x0010], 0x00000001
//! cvt.u32.u16 $r1, %ctaid.x
//! add.u32 $r3, -$r3, 0x00000100
//! mul.wide.u16 $r4, $r1.lo, $r3.hi
//! mad.wide.u16 $r4, $r1.hi, $r3.lo, $r4
//! and.b32 $p0|$o127, $r5, $r2
//! set.eq.s32.s32 $p0/$o127, $r6, $r1
//! @$p0.eq bra l0x00000228
//! l0x00000228: nop
//! bar.sync 0x00000000
//! min.s32 $r7, s[$ofs2+0x0040], $r8
//! ld.global.u32 $r2, [$r2]
//! @$p0.eq retp
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::instr::{CmpOp, Dest, Guard, Instruction, Opcode, PredTest};
use crate::operand::{Half, MemRef, MemSpace, Operand};
use crate::program::KernelProgram;
use crate::reg::Register;
use crate::ty::ScalarType;

/// Assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

/// Assembles PTXPlus-like source text into a [`KernelProgram`].
///
/// # Errors
///
/// Returns an [`AsmError`] (with line number) on any syntax error, unknown
/// mnemonic/register, duplicate label, or dangling branch target.
pub fn assemble(name: impl Into<String>, source: &str) -> Result<KernelProgram, AsmError> {
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    let mut pending: Vec<(usize, String, usize)> = Vec::new(); // (pc, label, line)
    let mut instructions = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find("//") {
            line = &line[..pos];
        }
        if let Some(pos) = line.find('#') {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Leading labels (possibly several, possibly alone on the line).
        while let Some(colon) = rest.find(':') {
            let (cand, after) = rest.split_at(colon);
            let cand = cand.trim();
            if !is_label(cand) {
                break;
            }
            if labels.insert(cand.to_owned(), instructions.len()).is_some() {
                return Err(err(line_no, format!("duplicate label `{cand}`")));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let instr = parse_instruction(rest, line_no, instructions.len(), &mut pending)?;
        instructions.push(instr);
    }

    for (pc, label, line_no) in pending {
        let Some(&target) = labels.get(&label) else {
            return Err(err(line_no, format!("undefined label `{label}`")));
        };
        if target >= instructions.len() {
            return Err(err(
                line_no,
                format!("label `{label}` points past the end of the program"),
            ));
        }
        instructions[pc].target = Some(target);
    }

    Ok(KernelProgram::from_parts(name, instructions, labels))
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn is_label(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_instruction(
    text: &str,
    line: usize,
    pc: usize,
    pending: &mut Vec<(usize, String, usize)>,
) -> Result<Instruction, AsmError> {
    let mut rest = text;
    let mut guard = None;
    if let Some(after) = rest.strip_prefix('@') {
        let (g, tail) = after
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line, "guard with no instruction"))?;
        guard = Some(parse_guard(g, line)?);
        rest = tail.trim_start();
    }

    let (head, tail) = match rest.split_once(char::is_whitespace) {
        Some((h, t)) => (h, t.trim()),
        None => (rest, ""),
    };

    let mut instr = parse_mnemonic(head, line)?;
    instr.guard = guard;

    let operands = split_operands(tail);
    apply_operands(&mut instr, &operands, line, pc, pending)?;
    Ok(instr)
}

fn parse_guard(g: &str, line: usize) -> Result<Guard, AsmError> {
    // `$p0.eq`
    let (reg, test) = g
        .split_once('.')
        .ok_or_else(|| err(line, format!("guard `{g}` missing condition test")))?;
    let Some(Register::Pred(pred)) = Register::from_name(reg) else {
        return Err(err(
            line,
            format!("guard register `{reg}` is not a predicate"),
        ));
    };
    let test = PredTest::from_name(test)
        .ok_or_else(|| err(line, format!("unknown guard test `{test}`")))?;
    Ok(Guard { pred, test })
}

fn parse_mnemonic(head: &str, line: usize) -> Result<Instruction, AsmError> {
    let mut parts = head.split('.');
    let base = parts.next().unwrap_or_default();
    let opcode =
        Opcode::from_mnemonic(base).ok_or_else(|| err(line, format!("unknown opcode `{base}`")))?;
    let mut instr = Instruction::new(opcode);
    let mut types = Vec::new();
    for modifier in parts {
        if let Some(ty) = ScalarType::from_suffix(modifier) {
            types.push(ty);
            continue;
        }
        match modifier {
            "wide" => instr.wide = true,
            "hi" => instr.hi = true,
            "lo" | "half" | "uni" | "sat" | "rn" | "rz" | "approx" | "full" => {}
            // Memory-space modifiers are informational: the space actually
            // used comes from the operand's bracket prefix (`g[...]`) or,
            // for bare `[...]`, defaults to global. `sync` belongs to `bar`.
            "global" | "shared" | "local" | "sync" => {}
            m => {
                if opcode == Opcode::Set || opcode == Opcode::Selp {
                    if let Some(cmp) = CmpOp::from_name(m) {
                        instr.cmp = Some(cmp);
                        continue;
                    }
                }
                return Err(err(line, format!("unknown modifier `.{m}` on `{base}`")));
            }
        }
    }
    match types.len() {
        0 => {}
        1 => {
            instr.ty = types[0];
            instr.src_ty = types[0];
        }
        2 => {
            instr.ty = types[0];
            instr.src_ty = types[1];
        }
        n => {
            return Err(err(
                line,
                format!("too many type suffixes ({n}) on `{base}`"),
            ))
        }
    }
    if opcode == Opcode::Set && instr.cmp.is_none() {
        return Err(err(
            line,
            "`set` requires a comparison modifier (e.g. `set.eq`)",
        ));
    }
    Ok(instr)
}

/// Splits the operand tail on top-level commas (commas inside `[...]` don't
/// occur in this ISA, so a plain split suffices).
fn split_operands(tail: &str) -> Vec<&str> {
    if tail.is_empty() {
        return Vec::new();
    }
    tail.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn apply_operands(
    instr: &mut Instruction,
    operands: &[&str],
    line: usize,
    pc: usize,
    pending: &mut Vec<(usize, String, usize)>,
) -> Result<(), AsmError> {
    match instr.opcode {
        Opcode::Bra => {
            let [target] = operands else {
                return Err(err(line, "`bra` takes exactly one target"));
            };
            pending.push((pc, (*target).to_owned(), line));
            Ok(())
        }
        Opcode::Ssy => {
            // `ssy <label>` declares the reconvergence point of the
            // following divergent branch (the SIMT executor honors it);
            // GPGPU-Sim-style raw addresses (`ssy 0x228`) are accepted and
            // ignored, since instruction indices differ from byte
            // addresses.
            if let Some(target) = operands.first() {
                if is_label(target) && !target.starts_with("0x") {
                    pending.push((pc, (*target).to_owned(), line));
                }
            }
            Ok(())
        }
        Opcode::Bar | Opcode::Nop | Opcode::Ret | Opcode::Retp | Opcode::Exit | Opcode::Trap => {
            // `bar.sync 0x...` carries an operand we ignore.
            Ok(())
        }
        Opcode::St => {
            let [dst, src] = operands else {
                return Err(err(line, "`st` takes a memory destination and a source"));
            };
            let mem = parse_memref(dst, line, MemSpace::Global)?;
            instr.dst[0] = Some(Dest::Mem(mem));
            instr.src[0] = Some(parse_operand(src, line)?);
            Ok(())
        }
        _ => {
            let Some((dst, srcs)) = operands.split_first() else {
                return Err(err(line, "missing destination operand"));
            };
            parse_dests(instr, dst, line)?;
            if srcs.len() > instr.src.len() {
                return Err(err(
                    line,
                    format!("too many source operands ({})", srcs.len()),
                ));
            }
            for (slot, text) in instr.src.iter_mut().zip(srcs) {
                *slot = Some(parse_operand(text, line)?);
            }
            Ok(())
        }
    }
}

fn parse_dests(instr: &mut Instruction, text: &str, line: usize) -> Result<(), AsmError> {
    // Dual destinations: `$p0|$o127` or `$p0/$r1`.
    let parts: Vec<&str> = text.split(['|', '/']).map(str::trim).collect();
    if parts.len() > 2 {
        return Err(err(line, format!("too many destinations in `{text}`")));
    }
    for (i, part) in parts.iter().enumerate() {
        if part.contains('[') {
            instr.dst[i] = Some(Dest::Mem(parse_memref(part, line, MemSpace::Global)?));
        } else {
            let reg = Register::from_name(part)
                .ok_or_else(|| err(line, format!("unknown destination register `{part}`")))?;
            instr.dst[i] = Some(Dest::Reg(reg));
        }
    }
    Ok(())
}

fn parse_operand(text: &str, line: usize) -> Result<Operand, AsmError> {
    if text.contains('[') {
        return Ok(Operand::Mem(parse_memref(text, line, MemSpace::Global)?));
    }
    let (neg, body) = match text.strip_prefix('-') {
        Some(b) if b.starts_with('$') || b.starts_with('%') => (true, b),
        _ => (false, text),
    };
    if body.starts_with('$') || body.starts_with('%') {
        // Possible half selection `.lo`/`.hi` (but `%tid.x` etc. contain dots
        // that belong to the register name).
        let (reg_name, half) = match body.strip_suffix(".lo") {
            Some(r) if Register::from_name(r).is_some() => (r, Some(Half::Lo)),
            _ => match body.strip_suffix(".hi") {
                Some(r) if Register::from_name(r).is_some() => (r, Some(Half::Hi)),
                _ => (body, None),
            },
        };
        let reg = Register::from_name(reg_name)
            .ok_or_else(|| err(line, format!("unknown register `{reg_name}`")))?;
        return Ok(Operand::Reg { reg, half, neg });
    }
    parse_immediate(text, line).map(Operand::Imm)
}

fn parse_immediate(text: &str, line: usize) -> Result<u32, AsmError> {
    if let Some(hex) = text.strip_prefix("0f").or_else(|| text.strip_prefix("0F")) {
        // PTX hex float literal: raw IEEE-754 bits.
        return u32::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex float literal `{text}`")));
    }
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex literal `{text}`")));
    }
    if let Some(hex) = text.strip_prefix("-0x") {
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| err(line, format!("bad hex literal `{text}`")))?;
        return Ok(v.wrapping_neg());
    }
    if text.contains('.') || text.contains('e') || text.contains('E') {
        let f: f32 = text
            .parse()
            .map_err(|_| err(line, format!("bad float literal `{text}`")))?;
        return Ok(f.to_bits());
    }
    if let Ok(v) = text.parse::<i64>() {
        if (i64::from(i32::MIN)..=i64::from(u32::MAX)).contains(&v) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            return Ok(v as u32);
        }
    }
    Err(err(line, format!("bad immediate `{text}`")))
}

fn parse_memref(text: &str, line: usize, default_space: MemSpace) -> Result<MemRef, AsmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(line, format!("`{text}` is not a memory operand")))?;
    let close = text
        .rfind(']')
        .ok_or_else(|| err(line, format!("unterminated memory operand `{text}`")))?;
    if close < open {
        return Err(err(line, format!("malformed memory operand `{text}`")));
    }
    let space = match text[..open].trim() {
        "" => default_space,
        "g" => MemSpace::Global,
        "s" => MemSpace::Shared,
        "l" => MemSpace::Local,
        other => return Err(err(line, format!("unknown memory space `{other}`"))),
    };
    let inner = text[open + 1..close].trim();
    // Forms: `imm`, `$reg`, `$reg+imm`.
    if let Some((base, off)) = inner.split_once('+') {
        let reg = Register::from_name(base.trim())
            .ok_or_else(|| err(line, format!("unknown base register `{base}`")))?;
        let offset = parse_immediate(off.trim(), line)?;
        return Ok(MemRef::relative(space, reg, offset));
    }
    if inner.starts_with('$') || inner.starts_with('%') {
        let reg = Register::from_name(inner)
            .ok_or_else(|| err(line, format!("unknown base register `{inner}`")))?;
        return Ok(MemRef::relative(space, reg, 0));
    }
    let offset = parse_immediate(inner, line)?;
    Ok(MemRef::absolute(space, offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Special;

    #[test]
    fn paper_figure5_snippet_parses() {
        let src = r#"
            shl.u32 $r3, s[0x0010], 0x00000001
            cvt.u32.u16 $r1, %ctaid.x
            add.u32 $r3, -$r3, 0x00000100
            mul.wide.u16 $r4, $r1.lo, $r3.hi
            mad.wide.u16 $r4, $r1.hi, $r3.lo, $r4
            cvt.s32.s32 $r2, -$r2
            and.b32 $p0|$o127, $r5, $r2
            ssy 0x00000228
            mov.u32 $r2, $r124
            @$p0.eq bra l0x00000228
            add.half.u32 $r7, s[0x0038], $r1
            min.s32 $r7, s[$ofs2+0x0040], $r8
            ld.global.u32 $r2, [$r2]
            mov.u32 s[$ofs3+0x0440], $r2
            l0x00000228: nop
            bar.sync 0x00000000
            set.eq.s32.s32 $p0/$o127, $r6, $r1
            @$p0.ne bra l0x000002b8
            l0x000002b8: set.ne.s32.s32 $p0/$o127, $r2, $r124
            bra l0x000002c8
            l0x000002c8: @$p0.eq retp
        "#;
        let p = assemble("pathfinder_snippet", src).expect("parse");
        assert_eq!(p.len(), 21);
        // `@$p0.eq bra l0x00000228` should resolve to the nop at index 14.
        let bra = p.instr(9);
        assert_eq!(bra.opcode, Opcode::Bra);
        assert_eq!(bra.target, Some(14));
        assert_eq!(
            bra.guard,
            Some(Guard {
                pred: 0,
                test: PredTest::Eq
            })
        );
        // mul.wide.u16 with half-register operands
        let mul = p.instr(3);
        assert!(mul.wide);
        assert_eq!(mul.ty, ScalarType::U16);
        assert_eq!(
            mul.src[0],
            Some(Operand::half_reg(Register::Gpr(1), Half::Lo))
        );
        // dual destination set
        let set = p.instr(16);
        assert_eq!(set.cmp, Some(CmpOp::Eq));
        assert_eq!(set.dst[0], Some(Dest::Reg(Register::Pred(0))));
        assert_eq!(set.dst[1], Some(Dest::Reg(Register::Discard)));
    }

    #[test]
    fn specials_and_conversions() {
        let p = assemble("t", "cvt.u32.u16 $r1, %tid.x\nexit").unwrap();
        let c = p.instr(0);
        assert_eq!(c.ty, ScalarType::U32);
        assert_eq!(c.src_ty, ScalarType::U16);
        assert_eq!(
            c.src[0],
            Some(Operand::reg(Register::Special(Special::TidX)))
        );
    }

    #[test]
    fn store_and_load() {
        let p = assemble(
            "t",
            "ld.global.u32 $r3, [$r2+0x10]\nst.global.u32 [$r2], $r3\nexit",
        )
        .unwrap();
        let ld = p.instr(0);
        assert_eq!(
            ld.src[0],
            Some(Operand::Mem(MemRef::relative(
                MemSpace::Global,
                Register::Gpr(2),
                0x10
            )))
        );
        let st = p.instr(1);
        assert_eq!(
            st.dst[0],
            Some(Dest::Mem(MemRef::relative(
                MemSpace::Global,
                Register::Gpr(2),
                0
            )))
        );
        assert_eq!(st.src[0], Some(Operand::reg(Register::Gpr(3))));
        assert_eq!(st.dest_bits(), 0);
    }

    #[test]
    fn float_literals() {
        let p = assemble("t", "mov.f32 $r1, 1.5\nmov.f32 $r2, 0f3F800000\nexit").unwrap();
        assert_eq!(p.instr(0).src[0], Some(Operand::Imm(1.5f32.to_bits())));
        assert_eq!(p.instr(1).src[0], Some(Operand::Imm(0x3F80_0000)));
    }

    #[test]
    fn negative_immediates() {
        let p = assemble("t", "add.s32 $r1, $r1, -5\nexit").unwrap();
        assert_eq!(p.instr(0).src[1], Some(Operand::Imm((-5i32) as u32)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("t", "nop\nbogus.u32 $r1, $r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("t", "bra nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble("t", "top: nop\ntop: exit\n").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn set_requires_cmp() {
        let e = assemble("t", "set.s32.s32 $p0/$o127, $r1, $r2\n").unwrap_err();
        assert!(e.message.contains("comparison"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble(
            "t",
            "// header comment\n\n  # another\nnop // trailing\nexit\n",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn label_alone_on_line() {
        let p = assemble("t", "top:\n  nop\n  bra top\n").unwrap();
        assert_eq!(p.instr(1).target, Some(0));
    }

    #[test]
    fn selp_with_cmp_modifier() {
        let p = assemble("t", "selp.ne.u32 $r1, $r2, $r3, $p0\nexit").unwrap();
        let s = p.instr(0);
        assert_eq!(s.opcode, Opcode::Selp);
        assert_eq!(s.cmp, Some(CmpOp::Ne));
        assert_eq!(s.src[2], Some(Operand::reg(Register::Pred(0))));
    }
}
