#![warn(missing_docs)]
//! PTXPlus-like GPU instruction set architecture.
//!
//! This crate defines the instruction set executed by the `fsp-sim`
//! functional simulator: scalar types, register classes, operands,
//! instructions, whole-kernel programs, a text assembler/disassembler and
//! static control-flow / loop analysis.
//!
//! The ISA mirrors the *PTXPlus* representation used by GPGPU-Sim (and by the
//! MICRO'18 paper this repository reproduces): 32-bit general-purpose
//! registers `$r0..$r127` with `$r124` hardwired to zero, 4-bit
//! condition-code ("predicate") registers `$p0..$p7`, the write-discard
//! register `$o127`, address-offset registers `$ofs0..$ofs3`, and special
//! read-only registers such as `%tid.x` and `%ctaid.x`.
//!
//! # Example
//!
//! ```
//! use fsp_isa::{assemble, KernelProgram};
//!
//! let program: KernelProgram = assemble(
//!     "vec_inc",
//!     r#"
//!     cvt.u32.u16 $r1, %tid.x
//!     shl.u32     $r2, $r1, 0x00000002
//!     add.u32     $r2, $r2, s[0x0010]
//!     ld.global.u32 $r3, [$r2]
//!     add.u32     $r3, $r3, 0x00000001
//!     st.global.u32 [$r2], $r3
//!     exit
//!     "#,
//! )?;
//! assert_eq!(program.len(), 7);
//! # Ok::<(), fsp_isa::AsmError>(())
//! ```

mod asm;
mod cfg;
mod instr;
mod operand;
mod program;
pub mod ptx;
mod reg;
mod ty;

pub use asm::{assemble, AsmError};
pub use cfg::{BasicBlock, Cfg, Loop, LoopForest};
pub use instr::{CmpOp, Dest, Guard, Instruction, Opcode, PredTest};
pub use operand::{Half, MemRef, MemSpace, Operand};
pub use program::KernelProgram;
pub use reg::{Register, Special, NUM_GPRS, NUM_OFS, NUM_PREDS, ZERO_GPR};
pub use ty::ScalarType;

/// Byte offset of the first kernel parameter in shared memory
/// (PTXPlus convention: `s[0x0010]` is parameter 0). The simulator
/// re-exports this; the PTX frontend uses it to translate `ld.param`.
pub const PARAM_BASE: u32 = 0x10;
