//! Scalar operation types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Scalar type of an operation or register value.
///
/// The type determines both the arithmetic semantics of an instruction and
/// the *bit width of its destination register* — the quantity `bit(t, i)` in
/// Equation (1) of the paper, which defines the exhaustive fault-site count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScalarType {
    /// 4-bit predicate / condition-code value (zero, sign, carry, overflow).
    Pred,
    /// Unsigned 16-bit integer.
    U16,
    /// Signed 16-bit integer.
    S16,
    /// Unsigned 32-bit integer.
    U32,
    /// Signed 32-bit integer.
    S32,
    /// Untyped 32-bit bits (logic operations, PTX `.b32`).
    B32,
    /// IEEE-754 single-precision float.
    F32,
}

impl ScalarType {
    /// Bit width of a value of this type.
    ///
    /// ```
    /// use fsp_isa::ScalarType;
    /// assert_eq!(ScalarType::U32.bits(), 32);
    /// assert_eq!(ScalarType::Pred.bits(), 4);
    /// ```
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            ScalarType::Pred => 4,
            ScalarType::U16 | ScalarType::S16 => 16,
            ScalarType::U32 | ScalarType::S32 | ScalarType::B32 | ScalarType::F32 => 32,
        }
    }

    /// Whether the type is interpreted as a signed integer.
    #[must_use]
    pub const fn is_signed(self) -> bool {
        matches!(self, ScalarType::S16 | ScalarType::S32)
    }

    /// Whether the type is a floating-point type.
    #[must_use]
    pub const fn is_float(self) -> bool {
        matches!(self, ScalarType::F32)
    }

    /// The assembler suffix for this type (e.g. `"u32"`).
    #[must_use]
    pub const fn suffix(self) -> &'static str {
        match self {
            ScalarType::Pred => "pred",
            ScalarType::U16 => "u16",
            ScalarType::S16 => "s16",
            ScalarType::U32 => "u32",
            ScalarType::S32 => "s32",
            ScalarType::B32 => "b32",
            ScalarType::F32 => "f32",
        }
    }

    /// Parses an assembler type suffix.
    #[must_use]
    pub fn from_suffix(s: &str) -> Option<Self> {
        Some(match s {
            "pred" => ScalarType::Pred,
            "u16" => ScalarType::U16,
            "s16" => ScalarType::S16,
            "u32" => ScalarType::U32,
            "s32" => ScalarType::S32,
            "b32" => ScalarType::B32,
            "f32" => ScalarType::F32,
            _ => return None,
        })
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ScalarType::Pred.bits(), 4);
        assert_eq!(ScalarType::U16.bits(), 16);
        assert_eq!(ScalarType::S16.bits(), 16);
        assert_eq!(ScalarType::U32.bits(), 32);
        assert_eq!(ScalarType::S32.bits(), 32);
        assert_eq!(ScalarType::B32.bits(), 32);
        assert_eq!(ScalarType::F32.bits(), 32);
    }

    #[test]
    fn suffix_roundtrip() {
        for ty in [
            ScalarType::Pred,
            ScalarType::U16,
            ScalarType::S16,
            ScalarType::U32,
            ScalarType::S32,
            ScalarType::B32,
            ScalarType::F32,
        ] {
            assert_eq!(ScalarType::from_suffix(ty.suffix()), Some(ty));
        }
        assert_eq!(ScalarType::from_suffix("u64"), None);
    }

    #[test]
    fn signedness() {
        assert!(ScalarType::S32.is_signed());
        assert!(ScalarType::S16.is_signed());
        assert!(!ScalarType::U32.is_signed());
        assert!(!ScalarType::F32.is_signed());
        assert!(ScalarType::F32.is_float());
        assert!(!ScalarType::B32.is_float());
    }
}
