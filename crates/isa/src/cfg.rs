//! Control-flow graph construction and natural-loop detection.
//!
//! Loop-wise pruning (Section III-D of the paper) needs to know which
//! dynamic instructions belong to which loop iteration. The static half of
//! that analysis lives here: basic blocks, dominators, back edges, and
//! natural loop bodies.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::instr::Opcode;
use crate::program::KernelProgram;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Successor block indices.
    pub successors: Vec<usize>,
}

impl BasicBlock {
    /// Instruction indices covered by this block.
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Loop {
    /// Loop id (index into [`LoopForest::loops`]).
    pub id: usize,
    /// Instruction index of the loop header.
    pub header: usize,
    /// Instruction indices of the back-edge branches (latches).
    pub latches: Vec<usize>,
    /// All instruction indices in the loop body (sorted, includes header and
    /// latches).
    pub body: Vec<usize>,
    /// Enclosing loop id, if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// Whether `pc` belongs to this loop's body.
    #[must_use]
    pub fn contains(&self, pc: usize) -> bool {
        self.body.binary_search(&pc).is_ok()
    }
}

/// All natural loops of a program.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopForest {
    /// The loops, outer loops before inner ones.
    pub loops: Vec<Loop>,
    /// Innermost loop id per instruction index (`usize::MAX` = not in a
    /// loop). Private encoding; use [`LoopForest::innermost`].
    innermost: Vec<usize>,
}

impl LoopForest {
    /// Innermost loop containing `pc`, if any.
    #[must_use]
    pub fn innermost(&self, pc: usize) -> Option<&Loop> {
        let id = *self.innermost.get(pc)?;
        self.loops.get(id)
    }

    /// Number of static instructions that belong to at least one loop.
    #[must_use]
    pub fn instructions_in_loops(&self) -> usize {
        self.innermost
            .iter()
            .filter(|&&id| id != usize::MAX)
            .count()
    }

    /// Whether the program contains any loop.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Number of loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }
}

/// Control-flow graph over basic blocks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    /// Block index per instruction.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    #[must_use]
    pub fn build(program: &KernelProgram) -> Self {
        let n = program.len();
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, instr) in program.instructions().iter().enumerate() {
            match instr.opcode {
                Opcode::Bra => {
                    if let Some(t) = instr.target {
                        leader[t] = true;
                    }
                    leader[pc + 1] = true;
                }
                Opcode::Ret | Opcode::Retp | Opcode::Exit | Opcode::Trap => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        // Collect block boundaries.
        let mut starts: Vec<usize> = (0..n).filter(|&pc| leader[pc]).collect();
        starts.push(n);
        let mut blocks = Vec::with_capacity(starts.len().saturating_sub(1));
        let mut block_of = vec![0usize; n];
        let mut start_to_block = BTreeMap::new();
        for w in starts.windows(2) {
            let (start, end) = (w[0], w[1]);
            start_to_block.insert(start, blocks.len());
            block_of[start..end].fill(blocks.len());
            blocks.push(BasicBlock {
                start,
                end,
                successors: Vec::new(),
            });
        }
        // Successors.
        let succs: Vec<Vec<usize>> = blocks
            .iter()
            .map(|blk| {
                let last = blk.end - 1;
                let instr = program.instr(last);
                let mut succ = Vec::new();
                match instr.opcode {
                    Opcode::Bra => {
                        if let Some(t) = instr.target {
                            succ.push(start_to_block[&t]);
                        }
                        // A guarded branch falls through.
                        if instr.guard.is_some() {
                            if let Some(&b) = start_to_block.get(&blk.end) {
                                succ.push(b);
                            }
                        }
                    }
                    Opcode::Exit | Opcode::Ret | Opcode::Trap => {}
                    Opcode::Retp => {
                        // Guarded return falls through; unguarded ends the
                        // thread.
                        if instr.guard.is_some() {
                            if let Some(&b) = start_to_block.get(&blk.end) {
                                succ.push(b);
                            }
                        }
                    }
                    _ => {
                        if let Some(&b) = start_to_block.get(&blk.end) {
                            succ.push(b);
                        }
                    }
                }
                succ.dedup();
                succ
            })
            .collect();
        for (block, succ) in blocks.iter_mut().zip(succs) {
            block.successors = succ;
        }
        Cfg { blocks, block_of }
    }

    /// The basic blocks in program order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    #[must_use]
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Computes immediate dominators with the classic iterative algorithm
    /// (Cooper-Harvey-Kennedy). Entry block dominates itself.
    #[must_use]
    pub fn dominators(&self) -> Vec<usize> {
        let n = self.blocks.len();
        if n == 0 {
            return Vec::new();
        }
        // Predecessors + reverse post-order.
        let mut preds = vec![Vec::new(); n];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.successors {
                preds[s].push(b);
            }
        }
        let rpo = self.reverse_post_order();
        let mut order_of = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order_of[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        idom[rpo[0]] = rpo[0];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &preds[b] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &order_of, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    fn reverse_post_order(&self) -> Vec<usize> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS from block 0.
        let mut stack = vec![(0usize, 0usize)];
        visited[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.blocks[b].successors.len() {
                let s = self.blocks[b].successors[*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Computes immediate *post*-dominators: for each block, the first
    /// block control must pass through on every path to thread exit, or
    /// `None` when the only common point is the exit itself.
    ///
    /// This is the reconvergence-point analysis SIMT execution needs: a
    /// divergent branch's warp re-converges at the immediate post-dominator
    /// of its block (GPGPU-Sim derives the same points from `ssy`
    /// annotations).
    #[must_use]
    pub fn post_dominators(&self) -> Vec<Option<usize>> {
        let n = self.blocks.len();
        if n == 0 {
            return Vec::new();
        }
        // Reverse CFG with a virtual exit (index n) as the entry; edges of
        // the reverse graph: virtual-exit -> every block without
        // successors, and succ -> pred for every real edge.
        let total = n + 1;
        let mut succ_rev: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (b, block) in self.blocks.iter().enumerate() {
            if block.successors.is_empty() {
                succ_rev[n].push(b);
            }
            for &s in &block.successors {
                succ_rev[s].push(b);
            }
        }
        // Reverse post-order of the reverse graph from the virtual exit.
        let mut visited = vec![false; total];
        let mut post = Vec::with_capacity(total);
        let mut stack = vec![(n, 0usize)];
        visited[n] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succ_rev[b].len() {
                let s = succ_rev[b][*i];
                *i += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        let mut order_of = vec![usize::MAX; total];
        for (i, &b) in post.iter().enumerate() {
            order_of[b] = i;
        }
        // Predecessors in the reverse graph = successors in the real one
        // (plus block -> virtual exit for exit blocks).
        let mut preds_rev: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (b, targets) in succ_rev.iter().enumerate() {
            for &t in targets {
                preds_rev[t].push(b);
            }
        }
        let mut ipdom = vec![usize::MAX; total];
        ipdom[n] = n;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in post.iter().filter(|&&b| b != n) {
                let mut new_idom = usize::MAX;
                for &p in &preds_rev[b] {
                    if ipdom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&ipdom, &order_of, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && ipdom[b] != new_idom {
                    ipdom[b] = new_idom;
                    changed = true;
                }
            }
        }
        (0..n)
            .map(|b| match ipdom[b] {
                x if x == n || x == usize::MAX => None,
                x => Some(x),
            })
            .collect()
    }

    /// The reconvergence pc of a (potentially divergent) branch at `pc`:
    /// the first instruction of the branch block's immediate
    /// post-dominator, or `None` when the paths only rejoin at thread
    /// exit.
    #[must_use]
    pub fn reconvergence_pc(&self, pc: usize) -> Option<usize> {
        let ipdom = self.post_dominators();
        ipdom[self.block_of(pc)].map(|b| self.blocks[b].start)
    }

    /// Whether block `a` dominates block `b`.
    fn dominates(idom: &[usize], a: usize, mut b: usize) -> bool {
        loop {
            if a == b {
                return true;
            }
            if idom[b] == usize::MAX || idom[b] == b {
                return false;
            }
            b = idom[b];
        }
    }

    /// Detects all natural loops of `program`.
    #[must_use]
    pub fn loops(&self, program: &KernelProgram) -> LoopForest {
        let idom = self.dominators();
        let n = self.blocks.len();
        let mut preds = vec![Vec::new(); n];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.successors {
                preds[s].push(b);
            }
        }
        // Back edges: latch block L with successor H where H dominates L.
        // Merge loops sharing a header. Unreachable latches (no dominator
        // entry) are skipped: dominance — and thus the natural-loop
        // definition — only applies to reachable blocks.
        let mut header_latches: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (l, block) in self.blocks.iter().enumerate() {
            if idom[l] == usize::MAX {
                continue;
            }
            for &h in &block.successors {
                if Self::dominates(&idom, h, l) {
                    header_latches.entry(h).or_default().push(l);
                }
            }
        }
        let mut loops = Vec::new();
        for (header, latches) in header_latches {
            // Natural loop body: header + all blocks that reach a latch
            // without passing through the header.
            let mut in_body = vec![false; n];
            in_body[header] = true;
            let mut stack = latches.clone();
            while let Some(b) = stack.pop() {
                if in_body[b] {
                    continue;
                }
                in_body[b] = true;
                for &p in &preds[b] {
                    // Unreachable predecessors jumping into the body are
                    // not part of the natural loop.
                    if !in_body[p] && idom[p] != usize::MAX {
                        stack.push(p);
                    }
                }
            }
            let mut body = Vec::new();
            for (b, present) in in_body.iter().enumerate() {
                if *present {
                    body.extend(self.blocks[b].range());
                }
            }
            body.sort_unstable();
            let latch_pcs = latches.iter().map(|&l| self.blocks[l].end - 1).collect();
            loops.push(Loop {
                id: 0, // fixed below after sorting
                header: self.blocks[header].start,
                latches: latch_pcs,
                body,
                parent: None,
                depth: 1,
            });
        }
        // Sort outer-to-inner (bigger bodies first), fix ids, link parents.
        loops.sort_by(|a, b| {
            b.body
                .len()
                .cmp(&a.body.len())
                .then(a.header.cmp(&b.header))
        });
        for (id, l) in loops.iter_mut().enumerate() {
            l.id = id;
        }
        for i in 0..loops.len() {
            // Parent = smallest enclosing strictly-larger loop.
            let mut parent = None;
            for j in 0..i {
                if loops[j].body.len() > loops[i].body.len() && loops[j].contains(loops[i].header) {
                    parent = Some(j);
                }
            }
            loops[i].parent = parent;
            loops[i].depth = parent.map_or(1, |p| loops[p].depth + 1);
        }
        let mut innermost = vec![usize::MAX; program.len()];
        for l in &loops {
            // Later loops are inner (sorted by body size descending), so a
            // plain overwrite leaves the innermost id.
            for &pc in &l.body {
                innermost[pc] = l.id;
            }
        }
        LoopForest { loops, innermost }
    }
}

fn intersect(idom: &[usize], order_of: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order_of[a] > order_of[b] {
            a = idom[a];
        }
        while order_of[b] > order_of[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use crate::asm::assemble;

    #[test]
    fn straight_line_has_one_block_no_loops() {
        let p = assemble("t", "mov.u32 $r1, $r2\nadd.u32 $r1, $r1, $r1\nexit").unwrap();
        let cfg = p.cfg();
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.loops(&p).is_empty());
    }

    #[test]
    fn single_loop_detected() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0xA
            @$p0.ne bra loop
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        let loops = cfg.loops(&p);
        assert_eq!(loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![3]);
        assert_eq!(l.body, vec![1, 2, 3]);
        assert_eq!(l.depth, 1);
        assert!(loops.innermost(2).is_some());
        assert!(loops.innermost(0).is_none());
        assert!(loops.innermost(4).is_none());
        assert_eq!(loops.instructions_in_loops(), 3);
    }

    #[test]
    fn nested_loops() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            outer:
            mov.u32 $r2, 0x0
            inner:
            add.u32 $r2, $r2, 0x1
            set.ne.u32.u32 $p0/$o127, $r2, 0x4
            @$p0.ne bra inner
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0x3
            @$p0.ne bra outer
            exit
            "#,
        )
        .unwrap();
        let loops = p.cfg().loops(&p);
        assert_eq!(loops.len(), 2);
        let outer = &loops.loops[0];
        let inner = &loops.loops[1];
        assert!(outer.body.len() > inner.body.len());
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.depth, 2);
        // Innermost assignment: the inner add belongs to the inner loop.
        assert_eq!(loops.innermost(3).unwrap().id, inner.id);
        // The outer increment belongs to the outer loop only.
        assert_eq!(loops.innermost(6).unwrap().id, outer.id);
    }

    #[test]
    fn if_then_is_not_a_loop() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r1, $r2
            @$p0.eq bra skip
            add.u32 $r3, $r3, 0x1
            skip:
            exit
            "#,
        )
        .unwrap();
        assert!(p.cfg().loops(&p).is_empty());
        // Guarded branch block has two successors.
        let cfg = p.cfg();
        let b = cfg.block_of(1);
        assert_eq!(cfg.blocks()[b].successors.len(), 2);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use crate::asm::assemble;

    #[test]
    fn unreachable_block_is_undominated() {
        let p = assemble(
            "t",
            r#"
            bra done
            add.u32 $r1, $r1, 0x1
            done:
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        let idom = cfg.dominators();
        let entry = cfg.block_of(0);
        let dead = cfg.block_of(1);
        let done = cfg.block_of(2);
        assert_eq!(idom[entry], entry, "entry dominates itself");
        assert_eq!(idom[dead], usize::MAX, "unreachable block has no idom");
        // `done`'s only *reachable* predecessor is the entry; the
        // unreachable block's fallthrough edge must not perturb dominance.
        assert_eq!(idom[done], entry);
        // The unreachable block still has a post-dominator: control leaving
        // it reaches `done` and then the exit.
        let ipdom = cfg.post_dominators();
        assert_eq!(ipdom[dead], Some(done));
        assert!(cfg.loops(&p).is_empty());
    }

    #[test]
    fn unreachable_self_loop_is_not_a_natural_loop() {
        let p = assemble(
            "t",
            r#"
            bra done
            dead:
            add.u32 $r1, $r1, 0x1
            bra dead
            done:
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        // The back edge lives entirely in unreachable code: dominance does
        // not apply there, so no natural loop may be reported.
        assert!(cfg.loops(&p).is_empty());
        assert_eq!(cfg.dominators()[cfg.block_of(1)], usize::MAX);
    }

    #[test]
    fn unreachable_jump_into_loop_body_is_excluded() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            bra loop
            stray:
            add.u32 $r2, $r2, 0x1
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0x8
            @$p0.ne bra loop
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        let loops = cfg.loops(&p);
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        // `stray` (pc 2) falls through into the loop header but is
        // unreachable; the natural loop body must not absorb it.
        assert!(!l.contains(2), "unreachable pc 2 in body {:?}", l.body);
        assert_eq!(l.header, 3);
    }

    #[test]
    fn single_block_self_loop() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0x8
            @$p0.ne bra loop
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        let loops = cfg.loops(&p);
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        // Header block is its own latch: body = exactly that block.
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![3]);
        assert_eq!(l.body, vec![1, 2, 3]);
        assert_eq!(l.depth, 1);
        assert_eq!(l.parent, None);
        assert_eq!(loops.innermost(2).unwrap().id, l.id);
        assert!(loops.innermost(4).is_none());
    }

    #[test]
    fn multiple_back_edges_merge_into_one_loop() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.eq.u32.u32 $p0/$o127, $r1, 0x4
            @$p0.eq bra loop
            add.u32 $r2, $r2, 0x1
            set.ne.u32.u32 $p1/$o127, $r1, 0x8
            @$p1.ne bra loop
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        let loops = cfg.loops(&p);
        // Two back edges to the same header form ONE natural loop with two
        // latches, not two loops.
        assert_eq!(loops.loops.len(), 1);
        let l = &loops.loops[0];
        assert_eq!(l.header, 1);
        assert_eq!(l.latches, vec![3, 6]);
        assert_eq!(l.body, (1..=6).collect::<Vec<_>>());
        assert_eq!(l.depth, 1);
        // Every body pc maps back to this single loop.
        for pc in 1..=6 {
            assert_eq!(loops.innermost(pc).unwrap().id, l.id, "pc {pc}");
        }
    }
}

#[cfg(test)]
mod postdom_tests {
    use crate::asm::assemble;

    #[test]
    fn if_then_reconverges_at_join() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r1, $r2
            @$p0.eq bra skip
            add.u32 $r3, $r3, 0x1
            skip:
            exit
            "#,
        )
        .unwrap();
        let cfg = p.cfg();
        // The branch at pc 1 reconverges at `skip` (pc 3).
        assert_eq!(cfg.reconvergence_pc(1), Some(3));
    }

    #[test]
    fn if_else_reconverges_after_both_arms() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r1, $r2
            @$p0.eq bra other
            add.u32 $r3, $r3, 0x1
            bra join
            other:
            add.u32 $r3, $r3, 0x2
            join:
            exit
            "#,
        )
        .unwrap();
        assert_eq!(p.cfg().reconvergence_pc(1), Some(5));
    }

    #[test]
    fn loop_exit_branch_reconverges_at_loop_exit() {
        let p = assemble(
            "t",
            r#"
            mov.u32 $r1, 0x0
            loop:
            add.u32 $r1, $r1, 0x1
            set.ne.u32.u32 $p0/$o127, $r1, 0x8
            @$p0.ne bra loop
            exit
            "#,
        )
        .unwrap();
        assert_eq!(p.cfg().reconvergence_pc(3), Some(4));
    }

    #[test]
    fn separate_exits_never_reconverge() {
        let p = assemble(
            "t",
            r#"
            set.eq.u32.u32 $p0/$o127, $r1, $r2
            @$p0.eq bra other
            exit
            other:
            exit
            "#,
        )
        .unwrap();
        assert_eq!(p.cfg().reconvergence_pc(1), None);
    }
}
