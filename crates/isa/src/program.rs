//! Whole-kernel programs.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::instr::Instruction;

/// A fully assembled kernel: a flat instruction sequence with resolved
/// branch targets plus the label table for round-tripping back to text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProgram {
    name: String,
    instructions: Vec<Instruction>,
    /// Label name → instruction index.
    labels: BTreeMap<String, usize>,
}

impl KernelProgram {
    /// Builds a program from parts. Prefer [`crate::assemble`] for anything
    /// hand-written.
    ///
    /// # Panics
    ///
    /// Panics if a branch target or label is out of range — programs with
    /// dangling targets are unusable and indicate a bug in the producer.
    #[must_use]
    pub fn from_parts(
        name: impl Into<String>,
        instructions: Vec<Instruction>,
        labels: BTreeMap<String, usize>,
    ) -> Self {
        let len = instructions.len();
        for (pc, instr) in instructions.iter().enumerate() {
            if let Some(t) = instr.target {
                assert!(
                    t < len,
                    "instruction {pc}: branch target {t} out of range ({len})"
                );
            }
        }
        for (label, &pc) in &labels {
            assert!(pc <= len, "label {label}: target {pc} out of range ({len})");
        }
        KernelProgram {
            name: name.into(),
            instructions,
            labels,
        }
    }

    /// The kernel name (e.g. `"calculate_temp"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn instr(&self, pc: usize) -> &Instruction {
        &self.instructions[pc]
    }

    /// The instruction at `pc`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instruction> {
        self.instructions.get(pc)
    }

    /// All instructions in program order.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The label table (label name → instruction index).
    #[must_use]
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// The label attached to `pc`, if any.
    #[must_use]
    pub fn label_at(&self, pc: usize) -> Option<&str> {
        self.labels
            .iter()
            .find(|(_, &p)| p == pc)
            .map(|(name, _)| name.as_str())
    }

    /// Builds the control-flow graph of this program.
    #[must_use]
    pub fn cfg(&self) -> Cfg {
        Cfg::build(self)
    }

    /// Upper bound on destination-register bits per full execution of the
    /// static program body (no control flow): the sum of
    /// [`Instruction::dest_bits`] over all static instructions. The dynamic
    /// per-thread value used by Equation (1) comes from tracing.
    #[must_use]
    pub fn static_dest_bits(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| u64::from(i.dest_bits()))
            .sum()
    }
}

impl fmt::Display for KernelProgram {
    /// Disassembles the program, one instruction per line, with labels.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".entry {}", self.name)?;
        for (pc, instr) in self.instructions.iter().enumerate() {
            if let Some(label) = self.label_at(pc) {
                writeln!(f, "{label}:")?;
            }
            // Rewrite resolved targets back to their label names.
            if let Some(t) = instr.target {
                let mut clone = instr.clone();
                clone.target = None;
                let label = self
                    .label_at(t)
                    .map_or_else(|| format!("@{t}"), str::to_owned);
                writeln!(f, "    {clone} {label}")?;
            } else {
                writeln!(f, "    {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Opcode;

    fn program_with(instrs: Vec<Instruction>) -> KernelProgram {
        KernelProgram::from_parts("t", instrs, BTreeMap::new())
    }

    #[test]
    fn basic_accessors() {
        let p = program_with(vec![
            Instruction::new(Opcode::Nop),
            Instruction::new(Opcode::Exit),
        ]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.instr(0).opcode, Opcode::Nop);
        assert_eq!(p.get(2), None);
        assert_eq!(p.name(), "t");
    }

    #[test]
    #[should_panic(expected = "branch target")]
    fn dangling_target_rejected() {
        let mut b = Instruction::new(Opcode::Bra);
        b.target = Some(10);
        let _ = program_with(vec![b]);
    }

    #[test]
    fn labels() {
        let mut labels = BTreeMap::new();
        labels.insert("top".to_owned(), 0);
        let p = KernelProgram::from_parts("t", vec![Instruction::new(Opcode::Exit)], labels);
        assert_eq!(p.label_at(0), Some("top"));
        assert_eq!(p.label_at(1), None);
    }
}
