//! Assembler coverage: operand forms, modifier combinations and error
//! paths beyond the unit tests in `src/asm.rs`.

use fsp_isa::{assemble, CmpOp, Dest, Half, MemSpace, Opcode, Operand, Register, ScalarType};

fn one(src: &str) -> fsp_isa::Instruction {
    let p = assemble("t", &format!("{src}\nexit")).unwrap_or_else(|e| panic!("{src}: {e}"));
    p.instr(0).clone()
}

#[test]
fn every_alu_opcode_parses() {
    for op in [
        "mov.u32 $r1, $r2",
        "cvt.u32.u16 $r1, $r2",
        "add.u32 $r1, $r2, $r3",
        "sub.s32 $r1, $r2, $r3",
        "mul.lo.u32 $r1, $r2, $r3",
        "mul.hi.s32 $r1, $r2, $r3",
        "mul.wide.u16 $r1, $r2.lo, $r3.hi",
        "mad.wide.u16 $r1, $r2.lo, $r3.hi, $r4",
        "div.f32 $r1, $r2, $r3",
        "rem.u32 $r1, $r2, $r3",
        "min.s32 $r1, $r2, $r3",
        "max.u32 $r1, $r2, $r3",
        "abs.s32 $r1, $r2",
        "neg.f32 $r1, $r2",
        "rcp.f32 $r1, $r2",
        "sqrt.f32 $r1, $r2",
        "rsqrt.f32 $r1, $r2",
        "ex2.f32 $r1, $r2",
        "lg2.f32 $r1, $r2",
        "and.b32 $r1, $r2, $r3",
        "or.b32 $r1, $r2, $r3",
        "xor.b32 $r1, $r2, $r3",
        "not.b32 $r1, $r2",
        "shl.u32 $r1, $r2, 0x1",
        "shr.s32 $r1, $r2, 0x1",
        "set.le.u32.u32 $p0/$o127, $r1, $r2",
        "selp.u32 $r1, $r2, $r3, $p0",
        "ld.global.f32 $r1, [$r2]",
        "st.global.f32 [$r2], $r1",
        "nop",
        "ssy 0x10",
        "bar.sync 0x0",
        "ret",
    ] {
        let _ = one(op);
    }
}

#[test]
fn all_set_comparisons() {
    for (name, cmp) in [
        ("eq", CmpOp::Eq),
        ("ne", CmpOp::Ne),
        ("lt", CmpOp::Lt),
        ("le", CmpOp::Le),
        ("gt", CmpOp::Gt),
        ("ge", CmpOp::Ge),
    ] {
        let i = one(&format!("set.{name}.s32.s32 $p0/$r1, $r2, $r3"));
        assert_eq!(i.cmp, Some(cmp));
        assert_eq!(i.ty, ScalarType::S32);
        assert_eq!(i.dst[0], Some(Dest::Reg(Register::Pred(0))));
        assert_eq!(i.dst[1], Some(Dest::Reg(Register::Gpr(1))));
    }
}

#[test]
fn memory_operand_forms() {
    // Absolute shared.
    let i = one("mov.u32 $r1, s[0x0010]");
    assert_eq!(
        i.src[0].unwrap().register(),
        None,
        "absolute reference has no base register"
    );
    // Offset-register relative.
    let i = one("mov.u32 $r1, s[$ofs2+0x40]");
    assert_eq!(i.src[0].unwrap().register(), Some(Register::Ofs(2)));
    // Gpr relative without offset.
    let i = one("mov.u32 $r1, g[$r9]");
    assert_eq!(i.src[0].unwrap().register(), Some(Register::Gpr(9)));
    // Negative offset (two's-complement wrap).
    let i = one("ld.global.u32 $r1, [$r2+-68]");
    let Some(Operand::Mem(m)) = i.src[0] else {
        panic!("expected memory operand")
    };
    assert_eq!(m.offset, (-68i32) as u32);
    assert_eq!(m.space, MemSpace::Global);
    // Local space.
    let i = one("mov.u32 l[0x8], $r1");
    let Some(Dest::Mem(m)) = i.dst[0] else {
        panic!("expected memory dest")
    };
    assert_eq!(m.space, MemSpace::Local);
}

#[test]
fn immediate_forms() {
    assert_eq!(one("mov.u32 $r1, 0x10").src[0], Some(Operand::Imm(16)));
    assert_eq!(one("mov.u32 $r1, 16").src[0], Some(Operand::Imm(16)));
    assert_eq!(
        one("mov.u32 $r1, -16").src[0],
        Some(Operand::Imm((-16i32) as u32))
    );
    assert_eq!(
        one("mov.u32 $r1, -0x10").src[0],
        Some(Operand::Imm((-16i32) as u32))
    );
    assert_eq!(
        one("mov.f32 $r1, 0f40490FDB").src[0],
        Some(Operand::Imm(0x4049_0FDB))
    );
    assert_eq!(
        one("mov.f32 $r1, 3.5").src[0],
        Some(Operand::Imm(3.5f32.to_bits()))
    );
    assert_eq!(
        one("mov.f32 $r1, 1e3").src[0],
        Some(Operand::Imm(1000.0f32.to_bits()))
    );
    assert_eq!(
        one("mov.u32 $r1, 4294967295").src[0],
        Some(Operand::Imm(u32::MAX))
    );
}

#[test]
fn half_register_operands() {
    let i = one("mul.wide.u16 $r4, $r1.lo, $r3.hi");
    assert_eq!(
        i.src[0],
        Some(Operand::half_reg(Register::Gpr(1), Half::Lo))
    );
    assert_eq!(
        i.src[1],
        Some(Operand::half_reg(Register::Gpr(3), Half::Hi))
    );
    assert!(i.wide);
}

#[test]
fn dual_destination_separators() {
    // Both `/` and `|` spell dual destinations (the paper uses both).
    let a = one("set.eq.s32.s32 $p0/$o127, $r1, $r2");
    let b = one("set.eq.s32.s32 $p0|$o127, $r1, $r2");
    assert_eq!(a.dst, b.dst);
}

#[test]
fn guards_on_any_instruction() {
    let i = one("@$p1.le add.u32 $r1, $r1, 0x1");
    let g = i.guard.unwrap();
    assert_eq!(g.pred, 1);
    assert_eq!(g.test.name(), "le");
    assert_eq!(i.opcode, Opcode::Add);
}

#[test]
fn error_unknown_register() {
    let e = assemble("t", "mov.u32 $r200, $r1\n").unwrap_err();
    assert!(e.message.contains("destination register"), "{e}");
}

#[test]
fn error_unknown_modifier() {
    let e = assemble("t", "add.v4 $r1, $r2, $r3\n").unwrap_err();
    assert!(e.message.contains("modifier"), "{e}");
}

#[test]
fn error_too_many_operands() {
    let e = assemble("t", "add.u32 $r1, $r2, $r3, $r4, $r5\n").unwrap_err();
    assert!(e.message.contains("too many source operands"), "{e}");
}

#[test]
fn error_missing_destination() {
    let e = assemble("t", "add.u32\n").unwrap_err();
    assert!(e.message.contains("destination"), "{e}");
}

#[test]
fn error_bad_guard() {
    let e = assemble("t", "@$r1.eq bra x\nx: exit\n").unwrap_err();
    assert!(e.message.contains("not a predicate"), "{e}");
    let e = assemble("t", "@$p0.zz bra x\nx: exit\n").unwrap_err();
    assert!(e.message.contains("guard test"), "{e}");
    let e = assemble("t", "@$p0 bra x\nx: exit\n").unwrap_err();
    assert!(e.message.contains("condition test"), "{e}");
}

#[test]
fn error_branch_needs_single_target() {
    let e = assemble("t", "bra a, b\na: exit\nb: exit\n").unwrap_err();
    assert!(e.message.contains("exactly one target"), "{e}");
}

#[test]
fn error_bad_memory_space() {
    let e = assemble("t", "mov.u32 $r1, q[0x10]\n").unwrap_err();
    assert!(e.message.contains("memory space"), "{e}");
}

#[test]
fn error_overflowing_immediate() {
    let e = assemble("t", "mov.u32 $r1, 99999999999999\n").unwrap_err();
    assert!(e.message.contains("immediate"), "{e}");
}

#[test]
fn error_guard_alone() {
    let e = assemble("t", "@$p0.eq\n").unwrap_err();
    assert!(e.message.contains("guard"), "{e}");
}

#[test]
fn labels_can_stack() {
    let p = assemble("t", "a: b: c: exit\nbra a\n").unwrap();
    assert_eq!(p.labels().len(), 3);
    assert_eq!(p.instr(1).target, Some(0));
}
