//! MVT — Polybench `mvt_kernel1` (K1).
//!
//! Matrix-vector product-and-add `x1 = x1 + A x y1` over an `N x N` matrix,
//! one thread per row. The single `N`-iteration loop dominates the dynamic
//! instruction stream (99.71% per Table VII), making MVT the loop-wise
//! pruning stage's best case.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    n: u32,
    block: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 512 threads, one per row of a 512x512 matrix.
        Scale::Paper => Geom { n: 512, block: 256 },
        // 64 threads over a 64x64 matrix.
        Scale::Eval => Geom { n: 64, block: 32 },
    }
}

fn source(g: &Geom) -> String {
    let n = g.n;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {b_shift}
        add.u32 $r3, $r3, $r1              // i (row)
        shl.u32 $r4, $r3, {row_shift}
        add.u32 $r4, $r4, s[0x0010]        // &A[i][0]
        mov.u32 $r5, s[0x0014]             // &y1[0]
        shl.u32 $r6, $r3, 0x2
        add.u32 $r6, $r6, s[0x0018]        // &x1[i]
        ld.global.f32 $r7, [$r6]           // acc = x1[i]
        mov.u32 $r8, {n}
        jloop:
        ld.global.f32 $r9, [$r4]
        ld.global.f32 $r10, [$r5]
        mul.f32 $r9, $r9, $r10
        add.f32 $r7, $r7, $r9
        add.u32 $r4, $r4, 0x4
        add.u32 $r5, $r5, 0x4
        add.u32 $r8, $r8, -1
        set.ne.u32.u32 $p0/$o127, $r8, $r124
        @$p0.ne bra jloop
        st.global.f32 [$r6], $r7
        exit
        "#,
        b_shift = g.block.trailing_zeros(),
        row_shift = n.trailing_zeros() + 2,
        n = n,
    )
}

/// Host-side reference (same f32 operation order as the kernel).
#[must_use]
pub fn reference(a: &[f32], y1: &[f32], x1: &[f32], n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let mut acc = x1[i];
            for j in 0..n {
                acc += a[i * n + j] * y1[j];
            }
            acc
        })
        .collect()
}

/// Builds the MVT workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("mvt_kernel1", &source(&g)).expect("mvt assembles");
    let n = g.n as usize;
    let words = n * n;
    let a_addr = 0u32;
    let y_addr = (words * 4) as u32;
    let x_addr = y_addr + (n * 4) as u32;
    let mut memory = MemBlock::with_words(words + 2 * n);
    memory.write_f32_slice(a_addr, &DataGen::new("mvt.A").f32_buffer(words, 0.0, 1.0));
    memory.write_f32_slice(y_addr, &DataGen::new("mvt.y1").f32_buffer(n, 0.0, 1.0));
    memory.write_f32_slice(x_addr, &DataGen::new("mvt.x1").f32_buffer(n, 0.0, 1.0));
    Workload::new(
        "MVT",
        "mvt_kernel1",
        "K1",
        Suite::Polybench,
        scale,
        program,
        (g.n / g.block, 1),
        (g.block, 1, 1),
        vec![a_addr, y_addr, x_addr],
        memory,
        (x_addr, n),
        Some(PaperReference {
            threads: 512,
            fault_sites: 6.83e7,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator};

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let n = geom(Scale::Eval).n as usize;
        let mut memory = w.init_memory();
        let to_f32 = |s: &[u32]| -> Vec<f32> { s.iter().map(|&x| f32::from_bits(x)).collect() };
        let a = to_f32(&memory.read_words(0, n * n));
        let y1 = to_f32(&memory.read_words((n * n * 4) as u32, n));
        let x1 = to_f32(&memory.read_words((n * n * 4 + n * 4) as u32, n));
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let expect = reference(&a, &y1, &x1, n);
        let (addr, len) = w.output_region();
        for (idx, (&bits, &want)) in memory.read_words(addr, len).iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at row {idx}");
        }
    }
}
