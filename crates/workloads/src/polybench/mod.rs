//! Polybench/GPU kernels: 2DCONV, MVT, 2MM, GEMM, SYRK.

pub mod conv2d;
pub mod gemm;
pub mod mm2;
pub mod mvt;
pub mod syrk;
