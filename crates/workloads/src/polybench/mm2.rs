//! 2MM — Polybench `mm2_kernel1` (K1).
//!
//! First half of the double matrix product: `tmp = A x B` over `N x N`
//! matrices (the paper injects only the first kernel). Structurally GEMM
//! without the alpha/beta scaling — a slightly shorter loop body, which is
//! why its Table I site count sits just below GEMM's.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    n: u32,
    block: (u32, u32),
}

fn geom(scale: Scale) -> Geom {
    match scale {
        Scale::Paper => Geom {
            n: 128,
            block: (32, 8),
        },
        Scale::Eval => Geom {
            n: 16,
            block: (8, 4),
        },
    }
}

fn source(g: &Geom) -> String {
    let n = g.n;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        cvt.u32.u16 $r3, %ctaid.x
        cvt.u32.u16 $r4, %ctaid.y
        shl.u32 $r5, $r3, {bx_shift}
        add.u32 $r5, $r5, $r1              // j
        shl.u32 $r6, $r4, {by_shift}
        add.u32 $r6, $r6, $r2              // i
        shl.u32 $r7, $r6, {row_shift}
        add.u32 $r7, $r7, s[0x0010]        // &A[i][0]
        shl.u32 $r8, $r5, 0x2
        add.u32 $r8, $r8, s[0x0014]        // &B[0][j]
        shl.u32 $r9, $r6, {n_shift}
        add.u32 $r9, $r9, $r5
        shl.u32 $r9, $r9, 0x2
        add.u32 $r9, $r9, s[0x0018]        // &tmp[i][j]
        mov.u32 $r10, $r124                // acc = 0.0
        mov.u32 $r11, {n}
        kloop:
        ld.global.f32 $r12, [$r7]
        ld.global.f32 $r13, [$r8]
        mul.f32 $r12, $r12, $r13
        add.f32 $r10, $r10, $r12
        add.u32 $r7, $r7, 0x4
        add.u32 $r8, $r8, {row_bytes}
        add.u32 $r11, $r11, -1
        set.ne.u32.u32 $p0/$o127, $r11, $r124
        @$p0.ne bra kloop
        st.global.f32 [$r9], $r10
        exit
        "#,
        bx_shift = g.block.0.trailing_zeros(),
        by_shift = g.block.1.trailing_zeros(),
        row_shift = n.trailing_zeros() + 2,
        n_shift = n.trailing_zeros(),
        n = n,
        row_bytes = n * 4,
    )
}

/// Host-side reference (same f32 operation order as the kernel).
#[must_use]
pub fn reference(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Builds the 2MM K1 workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("mm2_kernel1", &source(&g)).expect("2mm assembles");
    let words = (g.n * g.n) as usize;
    let (a_addr, b_addr, t_addr) = (0u32, (words * 4) as u32, (words * 8) as u32);
    let mut memory = MemBlock::with_words(3 * words);
    memory.write_f32_slice(a_addr, &DataGen::new("2mm.A").f32_buffer(words, 0.0, 1.0));
    memory.write_f32_slice(b_addr, &DataGen::new("2mm.B").f32_buffer(words, 0.0, 1.0));
    Workload::new(
        "2MM",
        "mm2_kernel1",
        "K1",
        Suite::Polybench,
        scale,
        program,
        (g.n / g.block.0, g.n / g.block.1),
        (g.block.0, g.block.1, 1),
        vec![a_addr, b_addr, t_addr],
        memory,
        (t_addr, words),
        Some(PaperReference {
            threads: 16384,
            fault_sites: 5.55e8,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator};

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let n = geom(Scale::Eval).n as usize;
        let words = n * n;
        let mut memory = w.init_memory();
        let a: Vec<f32> = memory
            .read_words(0, words)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        let b: Vec<f32> = memory
            .read_words((words * 4) as u32, words)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let expect = reference(&a, &b, n);
        let (addr, len) = w.output_region();
        for (idx, (&bits, &want)) in memory.read_words(addr, len).iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at element {idx}");
        }
    }
}
