//! SYRK — Polybench `syrk_kernel` (K1).
//!
//! Symmetric rank-k update `C = alpha * A x A^T + beta * C` over `N x N`
//! matrices; one thread per output element, identical control flow across
//! threads (single representative under thread-wise pruning).

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

/// alpha in `C = alpha*A*A^T + beta*C`.
pub const ALPHA: f32 = 1.5;
/// beta in `C = alpha*A*A^T + beta*C`.
pub const BETA: f32 = 1.2;

struct Geom {
    n: u32,
    block: (u32, u32),
}

fn geom(scale: Scale) -> Geom {
    match scale {
        Scale::Paper => Geom {
            n: 128,
            block: (32, 8),
        },
        Scale::Eval => Geom {
            n: 16,
            block: (8, 4),
        },
    }
}

fn source(g: &Geom) -> String {
    let n = g.n;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        cvt.u32.u16 $r3, %ctaid.x
        cvt.u32.u16 $r4, %ctaid.y
        shl.u32 $r5, $r3, {bx_shift}
        add.u32 $r5, $r5, $r1              // j
        shl.u32 $r6, $r4, {by_shift}
        add.u32 $r6, $r6, $r2              // i
        shl.u32 $r7, $r6, {row_shift}
        add.u32 $r7, $r7, s[0x0010]        // &A[i][0]
        shl.u32 $r8, $r5, {row_shift}
        add.u32 $r8, $r8, s[0x0010]        // &A[j][0]
        shl.u32 $r9, $r6, {n_shift}
        add.u32 $r9, $r9, $r5
        shl.u32 $r9, $r9, 0x2
        add.u32 $r9, $r9, s[0x0014]        // &C[i][j]
        ld.global.f32 $r10, [$r9]
        mul.f32 $r10, $r10, {beta}
        mov.u32 $r11, {n}
        kloop:
        ld.global.f32 $r12, [$r7]
        ld.global.f32 $r13, [$r8]
        mul.f32 $r12, $r12, $r13
        mul.f32 $r12, $r12, {alpha}
        add.f32 $r10, $r10, $r12
        add.u32 $r7, $r7, 0x4
        add.u32 $r8, $r8, 0x4
        add.u32 $r11, $r11, -1
        set.ne.u32.u32 $p0/$o127, $r11, $r124
        @$p0.ne bra kloop
        st.global.f32 [$r9], $r10
        exit
        "#,
        bx_shift = g.block.0.trailing_zeros(),
        by_shift = g.block.1.trailing_zeros(),
        row_shift = n.trailing_zeros() + 2,
        n_shift = n.trailing_zeros(),
        n = n,
        alpha = crate::data::fimm(ALPHA),
        beta = crate::data::fimm(BETA),
    )
}

/// Host-side reference (same f32 operation order as the kernel).
#[must_use]
pub fn reference(a: &[f32], c: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = c[i * n + j] * BETA;
            for k in 0..n {
                acc += a[i * n + k] * a[j * n + k] * ALPHA;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Builds the SYRK workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("syrk_kernel", &source(&g)).expect("syrk assembles");
    let words = (g.n * g.n) as usize;
    let (a_addr, c_addr) = (0u32, (words * 4) as u32);
    let mut memory = MemBlock::with_words(2 * words);
    memory.write_f32_slice(a_addr, &DataGen::new("syrk.A").f32_buffer(words, 0.0, 1.0));
    memory.write_f32_slice(c_addr, &DataGen::new("syrk.C").f32_buffer(words, 0.0, 1.0));
    Workload::new(
        "SYRK",
        "syrk_kernel",
        "K1",
        Suite::Polybench,
        scale,
        program,
        (g.n / g.block.0, g.n / g.block.1),
        (g.block.0, g.block.1, 1),
        vec![a_addr, c_addr],
        memory,
        (c_addr, words),
        Some(PaperReference {
            threads: 16384,
            fault_sites: 6.23e8,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator};

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let n = geom(Scale::Eval).n as usize;
        let words = n * n;
        let mut memory = w.init_memory();
        let a: Vec<f32> = memory
            .read_words(0, words)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        let c: Vec<f32> = memory
            .read_words((words * 4) as u32, words)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let expect = reference(&a, &c, n);
        let (addr, len) = w.output_region();
        for (idx, (&bits, &want)) in memory.read_words(addr, len).iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at element {idx}");
        }
    }
}
