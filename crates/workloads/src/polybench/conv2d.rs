//! 2DCONV — Polybench `Convolution2D_kernel` (K1).
//!
//! A 3×3 convolution over an `(RB+1) × NJ` image. The launch covers twice
//! the valid rows (the standard ceil-division overshoot), so the kernel
//! reproduces the paper's Table III structure exactly:
//!
//! * threads with `i >= RB` exit after **11** dynamic instructions
//!   (CTA group C-3, 50% of CTAs);
//! * row 0 exits after **13** (the extra row in C-1);
//! * boundary columns exit after **15**;
//! * interior threads run the full **48**-instruction convolution.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

/// Geometry per scale.
struct Geom {
    /// Columns (power of two).
    nj: u32,
    /// Valid-row bound: rows `1..RB` compute; the grid covers `2*RB` rows.
    rb: u32,
    /// Block dims (x, y).
    block: (u32, u32),
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 8192 threads: block 32x8, grid 2x16 = 32 CTAs (Table I / III).
        Scale::Paper => Geom {
            nj: 64,
            rb: 64,
            block: (32, 8),
        },
        // 512 threads: block 8x4, grid 2x8 = 16 CTAs, same structure.
        Scale::Eval => Geom {
            nj: 16,
            rb: 16,
            block: (8, 4),
        },
    }
}

/// Polybench 2DCONV coefficients, in neighbor reading order
/// (NW N NE, W C E, SW S SE).
pub const COEFFS: [f32; 9] = [0.2, -0.3, 0.4, 0.5, 0.6, 0.7, -0.8, -0.9, 0.1];

fn source(g: &Geom) -> String {
    let nj = g.nj;
    let row = nj * 4;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        cvt.u32.u16 $r3, %ctaid.x
        cvt.u32.u16 $r4, %ctaid.y
        shl.u32 $r5, $r3, {bx_shift}
        add.u32 $r5, $r5, $r1              // j
        shl.u32 $r6, $r4, {by_shift}
        add.u32 $r6, $r6, $r2              // i
        set.lt.u32.u32 $p0/$o127, $r6, {rb}
        @$p0.eq bra lexit                  // i >= RB      -> iCnt 11
        set.gt.u32.u32 $p0/$o127, $r6, 0x0
        @$p0.eq bra lrow0                  // i == 0       -> iCnt 13
        add.u32 $r7, $r5, -1               // j - 1
        set.lt.u32.u32 $p0/$o127, $r7, {jb}
        @$p0.eq bra lcol                   // j on boundary -> iCnt 15
        // interior: r8 = &A[i][j]
        shl.u32 $r8, $r6, {nj_shift}
        add.u32 $r8, $r8, $r5
        shl.u32 $r8, $r8, 0x2
        add.u32 $r8, $r8, s[0x0010]
        ld.global.f32 $r9,  [$r8+-{nw}]
        ld.global.f32 $r10, [$r8+-{n}]
        ld.global.f32 $r11, [$r8+-{ne}]
        ld.global.f32 $r12, [$r8+-4]
        ld.global.f32 $r13, [$r8]
        ld.global.f32 $r14, [$r8+4]
        ld.global.f32 $r15, [$r8+{sw}]
        ld.global.f32 $r16, [$r8+{s}]
        ld.global.f32 $r17, [$r8+{se}]
        mul.f32 $r9,  $r9,  0.2
        mul.f32 $r10, $r10, -0.3
        mul.f32 $r11, $r11, 0.4
        mul.f32 $r12, $r12, 0.5
        mul.f32 $r13, $r13, 0.6
        mul.f32 $r14, $r14, 0.7
        mul.f32 $r15, $r15, -0.8
        mul.f32 $r16, $r16, -0.9
        mul.f32 $r17, $r17, 0.1
        add.f32 $r9, $r9, $r10
        add.f32 $r9, $r9, $r11
        add.f32 $r9, $r9, $r12
        add.f32 $r9, $r9, $r13
        add.f32 $r9, $r9, $r14
        add.f32 $r9, $r9, $r15
        add.f32 $r9, $r9, $r16
        add.f32 $r9, $r9, $r17
        shl.u32 $r20, $r6, {nj_shift}
        add.u32 $r20, $r20, $r5
        shl.u32 $r20, $r20, 0x2
        add.u32 $r20, $r20, s[0x0014]
        st.global.f32 [$r20], $r9
        exit
        lrow0: bra lexit
        lcol: bra lexit
        lexit: exit
        "#,
        bx_shift = g.block.0.trailing_zeros(),
        by_shift = g.block.1.trailing_zeros(),
        rb = g.rb,
        jb = nj - 2,
        nj_shift = nj.trailing_zeros(),
        nw = row + 4,
        n = row,
        ne = row - 4,
        sw = row - 4,
        s = row,
        se = row + 4,
    )
}

/// Host-side reference convolution (same f32 operation order as the
/// kernel), used by tests to validate the simulator.
#[must_use]
pub fn reference(a: &[f32], nj: usize, rb: usize) -> Vec<f32> {
    let rows = rb + 1;
    let mut b = vec![0.0f32; rows * nj];
    for i in 1..rb {
        for j in 1..nj - 1 {
            let at = |di: isize, dj: isize| {
                a[((i as isize + di) as usize) * nj + (j as isize + dj) as usize]
            };
            let mut acc = COEFFS[0] * at(-1, -1);
            acc += COEFFS[1] * at(-1, 0);
            acc += COEFFS[2] * at(-1, 1);
            acc += COEFFS[3] * at(0, -1);
            acc += COEFFS[4] * at(0, 0);
            acc += COEFFS[5] * at(0, 1);
            acc += COEFFS[6] * at(1, -1);
            acc += COEFFS[7] * at(1, 0);
            acc += COEFFS[8] * at(1, 1);
            b[i * nj + j] = acc;
        }
    }
    b
}

/// Builds the 2DCONV workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("Convolution2D_kernel", &source(&g)).expect("2dconv assembles");
    let words = ((g.rb + 1) * g.nj) as usize;
    let a_addr = 0u32;
    let b_addr = (words * 4) as u32;
    let mut memory = MemBlock::with_words(2 * words);
    let a = DataGen::new("2dconv.A").f32_buffer(words, 0.0, 1.0);
    memory.write_f32_slice(a_addr, &a);
    let grid = (g.nj / g.block.0, 2 * g.rb / g.block.1);
    Workload::new(
        "2DCONV",
        "Convolution2D_kernel",
        "K1",
        Suite::Polybench,
        scale,
        program,
        grid,
        (g.block.0, g.block.1, 1),
        vec![a_addr, b_addr],
        memory,
        (b_addr, words),
        Some(PaperReference {
            threads: 8192,
            fault_sites: 6.32e6,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let words = ((g.rb + 1) * g.nj) as usize;
        let a: Vec<f32> = memory
            .read_words(0, words)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        let expect = reference(&a, g.nj as usize, g.rb as usize);
        let (addr, len) = w.output_region();
        let out = memory.read_words(addr, len);
        for (idx, (&bits, &want)) in out.iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at word {idx}");
        }
    }

    #[test]
    fn table3_icnt_groups() {
        for scale in [Scale::Eval, Scale::Paper] {
            let w = k1(scale);
            let launch = w.launch();
            let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
            let mut memory = w.init_memory();
            Simulator::new()
                .run(&launch, &mut memory, &mut tracer)
                .unwrap();
            let trace = tracer.finish();
            let mut icnts: Vec<u32> = trace.icnt.clone();
            icnts.sort_unstable();
            icnts.dedup();
            assert_eq!(icnts, vec![11, 13, 15, 48], "scale {scale:?}");
        }
    }

    #[test]
    fn paper_scale_site_count_near_table1() {
        let w = k1(Scale::Paper);
        let launch = w.launch();
        assert_eq!(launch.num_threads(), 8192);
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let total = tracer.finish().total_fault_sites() as f64;
        let paper = w.paper_reference().unwrap().fault_sites;
        assert!(
            (total / paper - 1.0).abs() < 0.25,
            "sites {total:.3e} vs paper {paper:.3e}"
        );
    }
}
