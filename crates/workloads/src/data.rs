//! Deterministic input-data generation.
//!
//! Injection campaigns re-create the input image thousands of times, and
//! outcome classification compares outputs bitwise — inputs must therefore
//! be cheap and bit-reproducible. A SplitMix64 stream keyed by
//! (buffer name, index) provides both.

/// Deterministic pseudo-random data stream.
#[derive(Debug, Clone, Copy)]
pub struct DataGen {
    state: u64,
}

impl DataGen {
    /// Creates a stream keyed by a buffer label.
    #[must_use]
    pub fn new(label: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in label.bytes() {
            state = state
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(u64::from(b));
        }
        DataGen { state }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next `f32` uniform in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }

    /// Next `f32` uniform in `[lo, hi)`.
    pub fn next_f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + self.next_f32() * (hi - lo)
    }

    /// Fills a length-`n` `f32` buffer in `[lo, hi)`.
    pub fn f32_buffer(&mut self, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| self.next_f32_in(lo, hi)).collect()
    }

    /// Fills a length-`n` `u32` buffer in `[0, bound)`.
    pub fn u32_buffer(&mut self, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| self.next_u32() % bound.max(1)).collect()
    }
}

/// Formats an `f32` as a PTX hex-float literal (`0f3F800000`) — the only
/// interpolation form that is bit-exact for *every* value (plain `{}`
/// formatting renders `30.0` as `"30"`, which the assembler would read as
/// an integer immediate).
#[must_use]
pub fn fimm(x: f32) -> String {
    format!("0f{:08X}", x.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let a: Vec<u64> = {
            let mut g = DataGen::new("A");
            (0..8).map(|_| g.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut g = DataGen::new("A");
            (0..8).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = DataGen::new("B");
            (0..8).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn f32_ranges() {
        let mut g = DataGen::new("range");
        for _ in 0..1000 {
            let x = g.next_f32_in(1.0, 2.0);
            assert!((1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn buffers() {
        let mut g = DataGen::new("buf");
        let f = g.f32_buffer(100, -1.0, 1.0);
        assert_eq!(f.len(), 100);
        assert!(f.iter().all(|x| (-1.0..1.0).contains(x)));
        let u = g.u32_buffer(50, 10);
        assert!(u.iter().all(|&x| x < 10));
    }
}
