//! PathFinder — Rodinia `dynproc_kernel` (K1).
//!
//! Dynamic programming over a cost grid: each thread owns one column, holds
//! the running minimum path cost in shared memory, and iterates
//! `PYRAMID_HEIGHT` rows. The computed region shrinks from both tile edges
//! each iteration (the pyramid), so threads near a tile edge compute fewer
//! iterations — producing the family of iCnt groups whose pairwise common
//! blocks make PathFinder the instruction-wise pruning stage's best case
//! (92.8% pruned in the paper's Table VI; Figure 5 shows two of its
//! threads).

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    /// Threads per CTA (tile width in columns).
    bs: u32,
    /// Number of CTAs.
    nb: u32,
    /// Pyramid height (DP iterations per kernel call).
    height: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 1280 threads = 5 CTAs x 256, 20 iterations (Table VII).
        Scale::Paper => Geom {
            bs: 256,
            nb: 5,
            height: 20,
        },
        // 128 threads = 2 CTAs x 64, 10 iterations.
        Scale::Eval => Geom {
            bs: 64,
            nb: 2,
            height: 10,
        },
    }
}

/// Shared-memory byte offset of the `prev` cost row.
const PREV: u32 = 0x100;

fn source(g: &Geom) -> String {
    let cur = PREV + g.bs * 4;
    let cols = g.bs * g.nb;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {bs_shift}
        add.u32 $r3, $r3, $r1              // col
        shl.u32 $r4, $r1, 0x2              // tx*4
        shl.u32 $r5, $r3, 0x2              // col*4
        add.u32 $r6, $r5, s[0x0010]        // &src[col]
        ld.global.f32 $r7, [$r6]
        add.u32 $r8, $r4, {prev}           // &prev[tx]
        mov.f32 s[$r8], $r7
        add.u32 $r9, $r5, s[0x0014]        // &wall[0][col]
        add.u32 $r10, $r4, {cur}           // &cur[tx]
        bar.sync 0x0
        mov.u32 $r20, $r124                // t = 0
        mov.u32 $r21, {bs_minus2}          // hi = BS-2-t
        tloop:
        mov.u32 $r30, $r124                // computed flag = 0
        set.gt.u32.u32 $p0/$o127, $r1, $r20
        @$p0.eq bra skipc                  // tx <= t
        set.le.u32.u32 $p0/$o127, $r1, $r21
        @$p0.eq bra skipc                  // tx > BS-2-t
        mov.u32 $r30, 0x1
        mov.f32 $r24, s[$r8+-4]            // prev[tx-1]
        mov.f32 $r25, s[$r8]               // prev[tx]
        mov.f32 $r26, s[$r8+4]             // prev[tx+1]
        min.f32 $r24, $r24, $r25
        min.f32 $r24, $r24, $r26
        ld.global.f32 $r27, [$r9]          // wall[t][col]
        add.f32 $r24, $r24, $r27
        mov.f32 s[$r10], $r24              // cur[tx]
        skipc:
        bar.sync 0x0
        set.ne.u32.u32 $p1/$o127, $r30, $r124
        @$p1.eq bra skipw                  // didn't compute: keep prev
        mov.f32 $r28, s[$r10]
        mov.f32 s[$r8], $r28               // prev[tx] = cur[tx]
        skipw:
        bar.sync 0x0
        add.u32 $r9, $r9, {cols4}          // next wall row
        add.u32 $r20, $r20, 0x1
        add.u32 $r21, $r21, -1
        set.ne.u32.u32 $p0/$o127, $r20, {height}
        @$p0.ne bra tloop
        mov.f32 $r29, s[$r8]
        add.u32 $r31, $r5, s[0x0018]       // &dst[col]
        st.global.f32 [$r31], $r29
        exit
        "#,
        bs_shift = g.bs.trailing_zeros(),
        prev = PREV,
        cur = cur,
        bs_minus2 = g.bs - 2,
        cols4 = cols * 4,
        height = g.height,
    )
}

/// Host-side reference of the pyramid DP (same f32 order as the kernel).
#[must_use]
pub fn reference(src: &[f32], wall: &[f32], bs: usize, nb: usize, height: usize) -> Vec<f32> {
    let cols = bs * nb;
    let mut prev = src.to_vec();
    for b in 0..nb {
        let tile = &mut prev[b * bs..(b + 1) * bs];
        for t in 0..height {
            let snapshot = tile.to_vec();
            for tx in 0..bs {
                // valid iff tx > t and tx <= bs-2-t
                if tx > t && tx + t <= bs - 2 {
                    let m = snapshot[tx - 1].min(snapshot[tx]).min(snapshot[tx + 1]);
                    tile[tx] = m + wall[t * cols + b * bs + tx];
                }
            }
        }
    }
    prev
}

/// Builds the PathFinder workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("dynproc_kernel", &source(&g)).expect("pathfinder assembles");
    let cols = (g.bs * g.nb) as usize;
    let wall_words = cols * g.height as usize;
    let src_addr = 0u32;
    let wall_addr = (cols * 4) as u32;
    let dst_addr = wall_addr + (wall_words * 4) as u32;
    let mut memory = MemBlock::with_words(cols + wall_words + cols);
    memory.write_f32_slice(
        src_addr,
        &DataGen::new("pathfinder.src").f32_buffer(cols, 0.0, 10.0),
    );
    memory.write_f32_slice(
        wall_addr,
        &DataGen::new("pathfinder.wall").f32_buffer(wall_words, 0.0, 10.0),
    );
    Workload::new(
        "PathFinder",
        "dynproc_kernel",
        "K1",
        Suite::Rodinia,
        scale,
        program,
        (g.nb, 1),
        (g.bs, 1, 1),
        vec![src_addr, wall_addr, dst_addr],
        memory,
        (dst_addr, cols),
        Some(PaperReference {
            threads: 1280,
            fault_sites: 2.77e7,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let cols = (g.bs * g.nb) as usize;
        let mut memory = w.init_memory();
        let to_f32 = |s: &[u32]| -> Vec<f32> { s.iter().map(|&x| f32::from_bits(x)).collect() };
        let src = to_f32(&memory.read_words(0, cols));
        let wall = to_f32(&memory.read_words((cols * 4) as u32, cols * g.height as usize));
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let expect = reference(&src, &wall, g.bs as usize, g.nb as usize, g.height as usize);
        let (addr, len) = w.output_region();
        for (idx, (&bits, &want)) in memory.read_words(addr, len).iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at column {idx}");
        }
    }

    #[test]
    fn pyramid_creates_icnt_family() {
        let w = k1(Scale::Eval);
        let launch = w.launch();
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let trace = tracer.finish();
        let mut icnts: Vec<u32> = trace.icnt.clone();
        icnts.sort_unstable();
        icnts.dedup();
        // Edge-distance groups: threads at distance d < height from a tile
        // edge compute fewer iterations; interior threads all match.
        assert!(
            icnts.len() > 5 && icnts.len() < 30,
            "expected a family of iCnt groups, got {icnts:?}"
        );
        // The two tiles behave identically.
        let per = launch.threads_per_cta() as usize;
        assert_eq!(trace.icnt[..per], trace.icnt[per..2 * per]);
    }
}
