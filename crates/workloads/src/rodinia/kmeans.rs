//! K-Means — Rodinia `invert_mapping` (K1) and `kmeansPoint` (K2).
//!
//! K1 transposes the feature matrix from point-major to feature-major
//! (a single `nfeatures`-iteration copy loop per thread). K2 assigns each
//! point to its nearest cluster centre — an `nclusters x nfeatures` nested
//! distance loop (5 × 34 = 170 total iterations in the paper's Table VII)
//! followed by an argmin update.
//!
//! The launch rounds the point count up to whole CTAs, so a tail of threads
//! exits after a handful of instructions — the "one representative with
//! fewer than 10 instructions" that makes K-Means unsuitable for
//! instruction-wise pruning (Section III-C).

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    npoints: u32,
    nfeatures: u32,
    nclusters: u32,
    block: u32,
    grid: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 2304 threads = 9 CTAs x 256 (Table I), 34 features, 5 clusters.
        Scale::Paper => Geom {
            npoints: 2200,
            nfeatures: 34,
            nclusters: 5,
            block: 256,
            grid: 9,
        },
        // 128 threads = 4 CTAs x 32.
        Scale::Eval => Geom {
            npoints: 120,
            nfeatures: 8,
            nclusters: 4,
            block: 32,
            grid: 4,
        },
    }
}

fn k1_source(g: &Geom) -> String {
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {b_shift}
        add.u32 $r3, $r3, $r1              // tid
        set.lt.u32.u32 $p0/$o127, $r3, {npoints}
        @$p0.eq bra lexit
        mul.lo.u32 $r4, $r3, {nfeat4}
        add.u32 $r4, $r4, s[0x0010]        // &input[tid][0]
        shl.u32 $r5, $r3, 0x2
        add.u32 $r5, $r5, s[0x0014]        // &output[0][tid]
        mov.u32 $r6, {nfeat}
        floop:
        ld.global.f32 $r7, [$r4]
        st.global.f32 [$r5], $r7
        add.u32 $r4, $r4, 0x4
        add.u32 $r5, $r5, {npoints4}
        add.u32 $r6, $r6, -1
        set.ne.u32.u32 $p0/$o127, $r6, $r124
        @$p0.ne bra floop
        lexit: exit
        "#,
        b_shift = g.block.trailing_zeros(),
        npoints = g.npoints,
        nfeat4 = g.nfeatures * 4,
        nfeat = g.nfeatures,
        npoints4 = g.npoints * 4,
    )
}

fn k2_source(g: &Geom) -> String {
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {b_shift}
        add.u32 $r3, $r3, $r1              // tid
        set.lt.u32.u32 $p0/$o127, $r3, {npoints}
        @$p0.eq bra lexit
        mov.u32 $r4, 0x7F800000            // bestdist = +inf
        mov.u32 $r5, $r124                 // best = 0
        mul.lo.u32 $r6, $r3, {nfeat4}
        add.u32 $r6, $r6, s[0x0010]        // &features[tid][0]
        mov.u32 $r7, s[0x0014]             // &clusters[0][0]
        mov.u32 $r8, $r124                 // c = 0
        cloop:
        mov.u32 $r9, $r6                   // feature cursor
        mov.u32 $r10, $r124                // dist = 0.0
        mov.u32 $r11, {nfeat}
        floop:
        ld.global.f32 $r12, [$r9]
        ld.global.f32 $r13, [$r7]
        sub.f32 $r12, $r12, $r13
        mul.f32 $r12, $r12, $r12
        add.f32 $r10, $r10, $r12
        add.u32 $r9, $r9, 0x4
        add.u32 $r7, $r7, 0x4
        add.u32 $r11, $r11, -1
        set.ne.u32.u32 $p0/$o127, $r11, $r124
        @$p0.ne bra floop
        set.lt.f32.f32 $p0/$o127, $r10, $r4
        @$p0.eq bra nup                    // not an improvement
        mov.u32 $r4, $r10                  // bestdist = dist
        mov.u32 $r5, $r8                   // best = c
        nup:
        add.u32 $r8, $r8, 0x1
        set.ne.u32.u32 $p0/$o127, $r8, {nclusters}
        @$p0.ne bra cloop
        shl.u32 $r14, $r3, 0x2
        add.u32 $r14, $r14, s[0x0018]
        st.global.u32 [$r14], $r5          // membership[tid]
        lexit: exit
        "#,
        b_shift = g.block.trailing_zeros(),
        npoints = g.npoints,
        nfeat4 = g.nfeatures * 4,
        nfeat = g.nfeatures,
        nclusters = g.nclusters,
    )
}

fn features(g: &Geom) -> Vec<f32> {
    DataGen::new("kmeans.features").f32_buffer((g.npoints * g.nfeatures) as usize, 0.0, 1.0)
}

/// Builds `invert_mapping` (K1).
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("invert_mapping", &k1_source(&g)).expect("kmeans k1 assembles");
    let words = (g.npoints * g.nfeatures) as usize;
    let mut memory = MemBlock::with_words(2 * words);
    memory.write_f32_slice(0, &features(&g));
    Workload::new(
        "K-Means",
        "invert_mapping",
        "K1",
        Suite::Rodinia,
        scale,
        program,
        (g.grid, 1),
        (g.block, 1, 1),
        vec![0, (words * 4) as u32],
        memory,
        ((words * 4) as u32, words),
        Some(PaperReference {
            threads: 2304,
            fault_sites: 1.47e7,
        }),
    )
}

/// Builds `kmeansPoint` (K2).
#[must_use]
pub fn k2(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("kmeansPoint", &k2_source(&g)).expect("kmeans k2 assembles");
    let fwords = (g.npoints * g.nfeatures) as usize;
    let cwords = (g.nclusters * g.nfeatures) as usize;
    let feat_addr = 0u32;
    let clus_addr = (fwords * 4) as u32;
    let memb_addr = clus_addr + (cwords * 4) as u32;
    let mut memory = MemBlock::with_words(fwords + cwords + g.npoints as usize);
    memory.write_f32_slice(feat_addr, &features(&g));
    memory.write_f32_slice(
        clus_addr,
        &DataGen::new("kmeans.clusters").f32_buffer(cwords, 0.0, 1.0),
    );
    Workload::new(
        "K-Means",
        "kmeansPoint",
        "K2",
        Suite::Rodinia,
        scale,
        program,
        (g.grid, 1),
        (g.block, 1, 1),
        vec![feat_addr, clus_addr, memb_addr],
        memory,
        (memb_addr, g.npoints as usize),
        Some(PaperReference {
            threads: 2304,
            fault_sites: 9.67e7,
        }),
    )
}

/// Host-side reference for K2 (argmin over squared euclidean distance, in
/// kernel accumulation order).
#[must_use]
pub fn k2_reference(
    features: &[f32],
    clusters: &[f32],
    np: usize,
    nf: usize,
    nc: usize,
) -> Vec<u32> {
    (0..np)
        .map(|p| {
            let mut best = 0u32;
            let mut bestdist = f32::INFINITY;
            for c in 0..nc {
                let mut dist = 0.0f32;
                for f in 0..nf {
                    let d = features[p * nf + f] - clusters[c * nf + f];
                    dist += d * d;
                }
                if dist < bestdist {
                    bestdist = dist;
                    best = c as u32;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};

    #[test]
    fn k1_transposes() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let (np, nf) = (g.npoints as usize, g.nfeatures as usize);
        let mut memory = w.init_memory();
        let input: Vec<u32> = memory.read_words(0, np * nf);
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let out = memory.read_words((np * nf * 4) as u32, np * nf);
        for p in 0..np {
            for f in 0..nf {
                assert_eq!(out[f * np + p], input[p * nf + f], "point {p} feature {f}");
            }
        }
    }

    #[test]
    fn k2_matches_argmin_reference() {
        let w = k2(Scale::Eval);
        let g = geom(Scale::Eval);
        let (np, nf, nc) = (
            g.npoints as usize,
            g.nfeatures as usize,
            g.nclusters as usize,
        );
        let mut memory = w.init_memory();
        let to_f32 = |s: &[u32]| -> Vec<f32> { s.iter().map(|&x| f32::from_bits(x)).collect() };
        let feats = to_f32(&memory.read_words(0, np * nf));
        let clus = to_f32(&memory.read_words((np * nf * 4) as u32, nc * nf));
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let (addr, len) = w.output_region();
        let got = memory.read_words(addr, len);
        let want = k2_reference(&feats, &clus, np, nf, nc);
        assert_eq!(got, &want[..]);
    }

    #[test]
    fn tail_threads_have_tiny_icnt() {
        let w = k1(Scale::Eval);
        let launch = w.launch();
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let trace = tracer.finish();
        let min = *trace.icnt.iter().min().unwrap();
        let max = *trace.icnt.iter().max().unwrap();
        assert!(min < 10, "tail threads exit early, got {min}");
        assert!(max > 50, "active threads run the copy loop, got {max}");
    }
}
