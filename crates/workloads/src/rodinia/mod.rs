//! Rodinia kernels: HotSpot, K-Means, Gaussian Elimination, PathFinder,
//! LU Decomposition, NN.

pub mod gaussian;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod nn;
pub mod pathfinder;
