//! NN (Nearest Neighbor) — Rodinia `euclid` kernel (K1).
//!
//! One thread per record: the Euclidean distance from a query point to the
//! record's (latitude, longitude). Straight-line code with no loops — the
//! paper lists NN in Table VII as its loop-free extreme.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{Scale, Suite, Workload};

/// Query latitude.
pub const LAT0: f32 = 30.0;
/// Query longitude.
pub const LNG0: f32 = 90.0;

struct Geom {
    nrecords: u32,
    block: u32,
    grid: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 43008 threads = 168 CTAs x 256 (Table VII).
        Scale::Paper => Geom {
            nrecords: 42800,
            block: 256,
            grid: 168,
        },
        // 512 threads = 16 CTAs x 32.
        Scale::Eval => Geom {
            nrecords: 500,
            block: 32,
            grid: 16,
        },
    }
}

fn source(g: &Geom) -> String {
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {b_shift}
        add.u32 $r3, $r3, $r1              // tid
        set.lt.u32.u32 $p0/$o127, $r3, {nrecords}
        @$p0.eq bra lexit
        shl.u32 $r4, $r3, 0x3              // 8 bytes per (lat, lng) record
        add.u32 $r4, $r4, s[0x0010]
        ld.global.f32 $r5, [$r4]           // lat
        ld.global.f32 $r6, [$r4+0x4]       // lng
        sub.f32 $r5, $r5, {lat0}
        sub.f32 $r6, $r6, {lng0}
        mul.f32 $r5, $r5, $r5
        mul.f32 $r6, $r6, $r6
        add.f32 $r5, $r5, $r6
        sqrt.f32 $r5, $r5
        shl.u32 $r7, $r3, 0x2
        add.u32 $r7, $r7, s[0x0014]
        st.global.f32 [$r7], $r5           // distances[tid]
        lexit: exit
        "#,
        b_shift = g.block.trailing_zeros(),
        nrecords = g.nrecords,
        lat0 = crate::data::fimm(LAT0),
        lng0 = crate::data::fimm(LNG0),
    )
}

/// Builds the NN workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("euclid", &source(&g)).expect("nn assembles");
    let n = g.nrecords as usize;
    let loc_addr = 0u32;
    let dist_addr = (2 * n * 4) as u32;
    let mut memory = MemBlock::with_words(3 * n);
    let mut gen = DataGen::new("nn.locations");
    let locations: Vec<f32> = (0..2 * n)
        .map(|i| {
            if i % 2 == 0 {
                gen.next_f32_in(0.0, 90.0) // latitude
            } else {
                gen.next_f32_in(0.0, 180.0) // longitude
            }
        })
        .collect();
    memory.write_f32_slice(loc_addr, &locations);
    Workload::new(
        "NN",
        "euclid",
        "K1",
        Suite::Rodinia,
        scale,
        program,
        (g.grid, 1),
        (g.block, 1, 1),
        vec![loc_addr, dist_addr],
        memory,
        (dist_addr, n),
        None, // NN appears only in the paper's Table VII
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator};

    #[test]
    fn distances_match_host() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let n = g.nrecords as usize;
        let mut memory = w.init_memory();
        let loc: Vec<f32> = memory
            .read_words(0, 2 * n)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let (addr, len) = w.output_region();
        let got = memory.read_words(addr, len);
        for i in 0..n {
            let dlat = loc[2 * i] - LAT0;
            let dlng = loc[2 * i + 1] - LNG0;
            let want = (dlat * dlat + dlng * dlng).sqrt();
            assert_eq!(got[i], want.to_bits(), "record {i}");
        }
    }

    #[test]
    fn paper_scale_geometry() {
        let w = k1(Scale::Paper);
        assert_eq!(w.launch().num_threads(), 43008);
    }
}
