//! HotSpot — Rodinia `calculate_temp` (K1).
//!
//! Thermal stencil with the pyramid optimization: each CTA loads a
//! `BS x BS` tile of the temperature and power grids into shared memory
//! (with a 2-cell halo) and applies **two unrolled stencil steps**, the
//! valid region shrinking by one ring per step (the paper's binary is also
//! loop-free — Table VII lists HotSpot with zero loop iterations).
//!
//! Divergence comes from two sources, giving HotSpot its wide iCnt spread
//! (77–183 in the paper, Table IV) and its ~10 CTA groups:
//!
//! * grid-border CTAs have threads whose global coordinates fall outside
//!   the chip, which skip the loads (and the four range tests fail at
//!   different depths on each side, so N/S/E/W borders and the four
//!   corners all differ);
//! * halo threads skip one or both stencil steps.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

/// Ambient temperature (boundary condition and halo default).
pub const AMB: f32 = 80.0;
/// East/west coupling coefficient.
pub const RX: f32 = 0.1;
/// North/south coupling coefficient.
pub const RY: f32 = 0.12;
/// Vertical (ambient) coupling coefficient.
pub const RZ: f32 = 0.05;
/// Step scaling factor.
pub const SDC: f32 = 0.3;

struct Geom {
    /// CTA edge (threads).
    bs: u32,
    /// Output tile edge (`bs - 4`: two halo rings).
    tile: u32,
    /// Grid edge in CTAs.
    g: u32,
}

impl Geom {
    /// Chip edge in cells.
    fn r(&self) -> u32 {
        self.tile * self.g
    }
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // 9216 threads = 6x6 CTAs of 16x16 (Table I).
        Scale::Paper => Geom {
            bs: 16,
            tile: 12,
            g: 6,
        },
        // 576 threads = 3x3 CTAs of 8x8.
        Scale::Eval => Geom {
            bs: 8,
            tile: 4,
            g: 3,
        },
    }
}

fn stencil_block(g: &Geom) -> String {
    let rowb = g.bs * 4;
    format!(
        r#"
        mov.f32 $r16, s[$r14]
        mov.f32 $r17, s[$r14+-{rowb}]
        mov.f32 $r18, s[$r14+{rowb}]
        mov.f32 $r19, s[$r14+-4]
        mov.f32 $r20, s[$r14+4]
        mov.f32 $r21, s[$r15]
        add.f32 $r22, $r16, $r16
        add.f32 $r23, $r17, $r18
        sub.f32 $r23, $r23, $r22
        mul.f32 $r23, $r23, {ry}
        add.f32 $r24, $r19, $r20
        sub.f32 $r24, $r24, $r22
        mul.f32 $r24, $r24, {rx}
        mov.f32 $r25, {amb}
        sub.f32 $r25, $r25, $r16
        mul.f32 $r25, $r25, {rz}
        add.f32 $r26, $r21, $r23
        add.f32 $r26, $r26, $r24
        add.f32 $r26, $r26, $r25
        mul.f32 $r26, $r26, {sdc}
        add.f32 $r26, $r26, $r16
        "#,
        rowb = rowb,
        ry = crate::data::fimm(RY),
        rx = crate::data::fimm(RX),
        amb = crate::data::fimm(AMB),
        rz = crate::data::fimm(RZ),
        sdc = crate::data::fimm(SDC),
    )
}

fn source(g: &Geom) -> String {
    let bs2 = g.bs * g.bs * 4;
    let (tin, pwr, tout) = (0x100, 0x100 + bs2, 0x100 + 2 * bs2);
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        cvt.u32.u16 $r3, %ctaid.x
        cvt.u32.u16 $r4, %ctaid.y
        mul.lo.u32 $r5, $r3, {tile}
        add.u32 $r5, $r5, $r1
        add.u32 $r5, $r5, -2               // gx (signed)
        mul.lo.u32 $r6, $r4, {tile}
        add.u32 $r6, $r6, $r2
        add.u32 $r6, $r6, -2               // gy (signed)
        shl.u32 $r7, $r2, {bshift}
        add.u32 $r7, $r7, $r1
        shl.u32 $r7, $r7, 0x2              // shared index * 4
        add.u32 $r14, $r7, {tin}
        add.u32 $r15, $r7, {pwr}
        add.u32 $r27, $r7, {tout}
        mov.f32 $r8, {amb}                 // halo temperature default
        mov.u32 $r9, $r124                 // halo power default
        set.ge.s32.s32 $p0/$o127, $r5, $r124
        @$p0.eq bra noload                 // gx < 0 (west border)
        set.lt.s32.s32 $p0/$o127, $r5, {r}
        @$p0.eq bra noload                 // gx >= R (east border)
        set.ge.s32.s32 $p0/$o127, $r6, $r124
        @$p0.eq bra noload                 // gy < 0 (north border)
        set.lt.s32.s32 $p0/$o127, $r6, {r}
        @$p0.eq bra noload                 // gy >= R (south border)
        mul.lo.u32 $r10, $r6, {r4}
        shl.u32 $r11, $r5, 0x2
        add.u32 $r10, $r10, $r11
        add.u32 $r12, $r10, s[0x0010]
        ld.global.f32 $r8, [$r12]
        add.u32 $r13, $r10, s[0x0014]
        ld.global.f32 $r9, [$r13]
        noload:
        mov.f32 s[$r14], $r8
        mov.f32 s[$r15], $r9
        bar.sync 0x0
        // ---- unrolled stencil step 1: valid tids in [1, BS-1)^2
        set.gt.u32.u32 $p0/$o127, $r1, $r124
        @$p0.eq bra s1skip
        set.lt.u32.u32 $p0/$o127, $r1, {bs_m1}
        @$p0.eq bra s1skip
        set.gt.u32.u32 $p0/$o127, $r2, $r124
        @$p0.eq bra s1skip
        set.lt.u32.u32 $p0/$o127, $r2, {bs_m1}
        @$p0.eq bra s1skip
        {stencil}
        mov.f32 s[$r27], $r26
        s1skip:
        bar.sync 0x0
        mov.f32 $r28, s[$r27]
        mov.f32 s[$r14], $r28              // tin = tout
        bar.sync 0x0
        // ---- unrolled stencil step 2: valid tids in [2, BS-2)^2
        set.gt.u32.u32 $p0/$o127, $r1, 0x1
        @$p0.eq bra s2skip
        set.lt.u32.u32 $p0/$o127, $r1, {bs_m2}
        @$p0.eq bra s2skip
        set.gt.u32.u32 $p0/$o127, $r2, 0x1
        @$p0.eq bra s2skip
        set.lt.u32.u32 $p0/$o127, $r2, {bs_m2}
        @$p0.eq bra s2skip
        {stencil}
        add.u32 $r29, $r10, s[0x0018]
        st.global.f32 [$r29], $r26
        s2skip:
        exit
        "#,
        tile = g.tile,
        bshift = g.bs.trailing_zeros(),
        tin = tin,
        pwr = pwr,
        tout = tout,
        amb = crate::data::fimm(AMB),
        r = g.r(),
        r4 = g.r() * 4,
        bs_m1 = g.bs - 1,
        bs_m2 = g.bs - 2,
        stencil = stencil_block(g),
    )
}

fn stencil(c: f32, n: f32, s: f32, w: f32, e: f32, p: f32) -> f32 {
    let c2 = c + c;
    let dy = (n + s - c2) * RY;
    let dx = (w + e - c2) * RX;
    let dz = (AMB - c) * RZ;
    (p + dy + dx + dz) * SDC + c
}

/// Host-side reference of the two-step pyramid (same f32 order, same
/// halo semantics as the kernel).
#[must_use]
pub fn reference(temp: &[f32], power: &[f32], bs: usize, tile: usize, g: usize) -> Vec<f32> {
    let r = tile * g;
    let mut out = vec![0.0f32; r * r];
    for cy in 0..g {
        for cx in 0..g {
            let mut tin = vec![AMB; bs * bs];
            let mut pw = vec![0.0f32; bs * bs];
            for ty in 0..bs {
                for tx in 0..bs {
                    let gx = (cx * tile + tx) as isize - 2;
                    let gy = (cy * tile + ty) as isize - 2;
                    if gx >= 0 && (gx as usize) < r && gy >= 0 && (gy as usize) < r {
                        tin[ty * bs + tx] = temp[gy as usize * r + gx as usize];
                        pw[ty * bs + tx] = power[gy as usize * r + gx as usize];
                    } else {
                        tin[ty * bs + tx] = AMB;
                        pw[ty * bs + tx] = 0.0;
                    }
                }
            }
            // Step 1 into tout (zeros outside the computed ring), then the
            // unconditional copy back, exactly like the kernel.
            let mut tout = vec![0.0f32; bs * bs];
            for ty in 1..bs - 1 {
                for tx in 1..bs - 1 {
                    tout[ty * bs + tx] = stencil(
                        tin[ty * bs + tx],
                        tin[(ty - 1) * bs + tx],
                        tin[(ty + 1) * bs + tx],
                        tin[ty * bs + tx - 1],
                        tin[ty * bs + tx + 1],
                        pw[ty * bs + tx],
                    );
                }
            }
            let tin = tout;
            for ty in 2..bs - 2 {
                for tx in 2..bs - 2 {
                    let v = stencil(
                        tin[ty * bs + tx],
                        tin[(ty - 1) * bs + tx],
                        tin[(ty + 1) * bs + tx],
                        tin[ty * bs + tx - 1],
                        tin[ty * bs + tx + 1],
                        pw[ty * bs + tx],
                    );
                    let gx = cx * tile + tx - 2;
                    let gy = cy * tile + ty - 2;
                    out[gy * r + gx] = v;
                }
            }
        }
    }
    out
}

/// Builds the HotSpot workload.
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("calculate_temp", &source(&g)).expect("hotspot assembles");
    let r = g.r() as usize;
    let words = r * r;
    let temp_addr = 0u32;
    let power_addr = (words * 4) as u32;
    let out_addr = (words * 8) as u32;
    let mut memory = MemBlock::with_words(3 * words);
    memory.write_f32_slice(
        temp_addr,
        &DataGen::new("hotspot.temp").f32_buffer(words, 323.0, 343.0),
    );
    memory.write_f32_slice(
        power_addr,
        &DataGen::new("hotspot.power").f32_buffer(words, 0.0, 0.01),
    );
    Workload::new(
        "HotSpot",
        "calculate_temp",
        "K1",
        Suite::Rodinia,
        scale,
        program,
        (g.g, g.g),
        (g.bs, g.bs, 1),
        vec![temp_addr, power_addr, out_addr],
        memory,
        (out_addr, words),
        Some(PaperReference {
            threads: 9216,
            fault_sites: 3.44e7,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};
    use std::collections::BTreeSet;

    #[test]
    fn matches_host_reference() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let r = g.r() as usize;
        let words = r * r;
        let mut memory = w.init_memory();
        let to_f32 = |s: &[u32]| -> Vec<f32> { s.iter().map(|&x| f32::from_bits(x)).collect() };
        let temp = to_f32(&memory.read_words(0, words));
        let power = to_f32(&memory.read_words((words * 4) as u32, words));
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let expect = reference(&temp, &power, g.bs as usize, g.tile as usize, g.g as usize);
        let (addr, len) = w.output_region();
        for (idx, (&bits, &want)) in memory.read_words(addr, len).iter().zip(&expect).enumerate() {
            assert_eq!(bits, want.to_bits(), "mismatch at cell {idx}");
        }
    }

    #[test]
    fn many_cta_groups_like_table4() {
        let w = k1(Scale::Paper);
        let launch = w.launch();
        assert_eq!(launch.num_threads(), 9216);
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let trace = tracer.finish();
        // CTA means split into ~9-10 groups (borders vs corners vs interior).
        let means: BTreeSet<u64> = (0..trace.num_ctas())
            .map(|c| (trace.cta_mean_icnt(c) * 1000.0) as u64)
            .collect();
        assert!(
            (4..=12).contains(&means.len()),
            "expected ~9 CTA groups, got {}",
            means.len()
        );
        // Threads diverge widely (halo vs interior vs off-chip).
        let min = *trace.icnt.iter().min().unwrap();
        let max = *trace.icnt.iter().max().unwrap();
        assert!(max > min + 30, "iCnt spread {min}..{max} too narrow");
    }
}
