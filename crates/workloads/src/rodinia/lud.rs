//! LU Decomposition — Rodinia `lud_perimeter` (K44), `lud_internal` (K45)
//! and `lud_diagonal` (K46).
//!
//! Tiled LU factorization over a `3·BS x 3·BS` matrix at the step the paper
//! injects (few remaining tiles, hence the tiny thread counts of Table I:
//! 32, 256 and 16 threads).
//!
//! * **K46 diagonal** (BS threads): triangular elimination of the diagonal
//!   tile — per-thread inner-loop work grows triangularly, totalling ~120
//!   iterations (Table VII).
//! * **K44 perimeter** (2·BS threads): forward substitution on the row
//!   tile (first half of the threads) and `xU = b` solves on the column
//!   tile (second half) — two structurally different thread groups.
//! * **K45 internal** (BS² threads): the trailing update
//!   `A -= L_col x U_row`, with the BS-step dot product fully unrolled —
//!   the paper's compiler unrolled it too, which is why Table VII lists
//!   K45 as loop-free.

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    /// Tile edge.
    bs: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        Scale::Paper => Geom { bs: 16 },
        Scale::Eval => Geom { bs: 8 },
    }
}

/// Matrix edge: 3 tiles.
fn m(g: &Geom) -> u32 {
    3 * g.bs
}

/// Shared-memory base of the diagonal tile.
const DIA: u32 = 0x100;

fn matrix(g: &Geom) -> Vec<f32> {
    let n = m(g) as usize;
    let mut a = DataGen::new("lud.a").f32_buffer(n * n, 0.5, 1.5);
    for i in 0..n {
        a[i * n + i] += 8.0; // keep pivots well away from zero
    }
    a
}

fn base_memory(g: &Geom) -> MemBlock {
    let n = m(g) as usize;
    let mut memory = MemBlock::with_words(n * n);
    memory.write_f32_slice(0, &matrix(g));
    memory
}

// --- K46: lud_diagonal -----------------------------------------------------

fn k46_source(g: &Geom) -> String {
    let bs = g.bs;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        shl.u32 $r2, $r1, {bs2_shift}      // tid*BS*4
        add.u32 $r3, $r2, {dia}            // &s[tid][0]
        mul.lo.u32 $r4, $r1, {m4}
        add.u32 $r4, $r4, s[0x0010]        // &a[tid][0]
        mov.u32 $r5, {bs}
        mov.u32 $r6, $r3
        lload:
        ld.global.f32 $r7, [$r4]
        mov.f32 s[$r6], $r7
        add.u32 $r4, $r4, 0x4
        add.u32 $r6, $r6, 0x4
        add.u32 $r5, $r5, -1
        set.ne.u32.u32 $p0/$o127, $r5, $r124
        @$p0.ne bra lload
        bar.sync 0x0
        mov.u32 $r8, $r124                 // i = 0
        iloop:
        set.gt.u32.u32 $p0/$o127, $r1, $r8
        @$p0.eq bra inext                  // only tid > i eliminates
        shl.u32 $r9, $r8, 0x2
        add.u32 $r10, $r3, $r9             // &s[tid][i]
        mov.f32 $r11, s[$r10]
        mov.u32 $r12, $r3                  // &s[tid][0]
        add.u32 $r13, $r9, {dia}           // &s[0][i]
        mov.u32 $r14, $r8                  // j counts down from i
        set.ne.u32.u32 $p0/$o127, $r14, $r124
        @$p0.eq bra idiv
        jloop:
        mov.f32 $r15, s[$r12]
        mov.f32 $r16, s[$r13]
        mul.f32 $r15, $r15, $r16
        sub.f32 $r11, $r11, $r15
        add.u32 $r12, $r12, 0x4
        add.u32 $r13, $r13, {bs4}
        add.u32 $r14, $r14, -1
        set.ne.u32.u32 $p0/$o127, $r14, $r124
        @$p0.ne bra jloop
        idiv:
        shl.u32 $r17, $r8, {bs2_shift}
        add.u32 $r17, $r17, $r9
        add.u32 $r17, $r17, {dia}          // &s[i][i]
        mov.f32 $r18, s[$r17]
        div.f32 $r11, $r11, $r18
        mov.f32 s[$r10], $r11
        inext:
        bar.sync 0x0
        add.u32 $r8, $r8, 0x1
        set.ne.u32.u32 $p0/$o127, $r8, {bs_m1}
        @$p0.ne bra iloop
        mul.lo.u32 $r19, $r1, {m4}
        add.u32 $r19, $r19, s[0x0010]
        mov.u32 $r20, $r3
        mov.u32 $r21, {bs}
        lstore:
        mov.f32 $r22, s[$r20]
        st.global.f32 [$r19], $r22
        add.u32 $r19, $r19, 0x4
        add.u32 $r20, $r20, 0x4
        add.u32 $r21, $r21, -1
        set.ne.u32.u32 $p0/$o127, $r21, $r124
        @$p0.ne bra lstore
        exit
        "#,
        bs2_shift = g.bs.trailing_zeros() + 2,
        dia = DIA,
        m4 = m(g) * 4,
        bs = bs,
        bs4 = bs * 4,
        bs_m1 = bs - 1,
    )
}

/// Host-side reference of K46 on the diagonal tile.
#[must_use]
pub fn k46_reference(a: &[f32], mm: usize, bs: usize) -> Vec<f32> {
    let mut t: Vec<f32> = (0..bs * bs).map(|i| a[(i / bs) * mm + i % bs]).collect();
    for i in 0..bs - 1 {
        for tid in i + 1..bs {
            let mut acc = t[tid * bs + i];
            for j in 0..i {
                acc -= t[tid * bs + j] * t[j * bs + i];
            }
            t[tid * bs + i] = acc / t[i * bs + i];
        }
    }
    let mut out = a.to_vec();
    for r in 0..bs {
        for c in 0..bs {
            out[r * mm + c] = t[r * bs + c];
        }
    }
    out
}

/// Builds `lud_diagonal` (K46).
#[must_use]
pub fn k46(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("lud_diagonal", &k46_source(&g)).expect("lud k46 assembles");
    let n = m(&g) as usize;
    Workload::new(
        "LUD",
        "lud_diagonal",
        "K46",
        Suite::Rodinia,
        scale,
        program,
        (1, 1),
        (g.bs, 1, 1),
        vec![0],
        base_memory(&g),
        (0, n * n),
        Some(PaperReference {
            threads: 16,
            fault_sites: 5.26e5,
        }),
    )
}

// --- K44: lud_perimeter ----------------------------------------------------

fn k44_source(g: &Geom) -> String {
    let bs = g.bs;
    let row_base = DIA + bs * bs * 4;
    let col_base = row_base + bs * bs * 4;
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        mov.u32 $r28, $r124                // half flag: 0 = row, 1 = col
        set.lt.u32.u32 $p0/$o127, $r1, {bs}
        @$p0.eq bra colload
        // ---- row half (tx = tid): load dia row tx and row-tile row tx
        shl.u32 $r2, $r1, {bs2_shift}      // tx*BS*4
        add.u32 $r3, $r2, {dia}            // &dia[tx][0]
        add.u32 $r4, $r2, {row_base}       // &row[tx][0]
        mul.lo.u32 $r5, $r1, {m4}
        add.u32 $r6, $r5, s[0x0010]        // &a[tx][0]
        add.u32 $r7, $r6, {bs4g}           // &a[tx][BS]
        mov.u32 $r8, {bs}
        rload:
        ld.global.f32 $r9, [$r6]
        mov.f32 s[$r3], $r9
        ld.global.f32 $r9, [$r7]
        mov.f32 s[$r4], $r9
        add.u32 $r6, $r6, 0x4
        add.u32 $r7, $r7, 0x4
        add.u32 $r3, $r3, 0x4
        add.u32 $r4, $r4, 0x4
        add.u32 $r8, $r8, -1
        set.ne.u32.u32 $p0/$o127, $r8, $r124
        @$p0.ne bra rload
        bra join1
        colload:
        // ---- col half (tx = tid - BS): load col-tile row tx
        add.u32 $r1, $r1, -{bs}            // tx
        mov.u32 $r28, 0x1
        shl.u32 $r2, $r1, {bs2_shift}
        add.u32 $r3, $r2, {col_base}       // &col[tx][0]
        add.u32 $r5, $r1, {bs}
        mul.lo.u32 $r5, $r5, {m4}
        add.u32 $r6, $r5, s[0x0010]        // &a[BS+tx][0]
        mov.u32 $r8, {bs}
        cload:
        ld.global.f32 $r9, [$r6]
        mov.f32 s[$r3], $r9
        add.u32 $r6, $r6, 0x4
        add.u32 $r3, $r3, 0x4
        add.u32 $r8, $r8, -1
        set.ne.u32.u32 $p0/$o127, $r8, $r124
        @$p0.ne bra cload
        join1:
        bar.sync 0x0                       // both halves reconverge to load-barrier
        set.ne.u32.u32 $p0/$o127, $r28, $r124
        @$p0.ne bra colcompute
        // ---- row half: forward substitution
        //   row[i][tx] -= sum_j<i dia[i][j] * row[j][tx]
        shl.u32 $r10, $r1, 0x2             // tx*4
        mov.u32 $r11, 0x1                  // i = 1
        riloop:
        shl.u32 $r12, $r11, {bs2_shift}
        add.u32 $r13, $r12, $r10
        add.u32 $r13, $r13, {row_base}     // &row[i][tx]
        mov.f32 $r14, s[$r13]
        add.u32 $r15, $r12, {dia}          // &dia[i][0]
        add.u32 $r16, $r10, {row_base}     // &row[0][tx]
        mov.u32 $r17, $r11                 // j counts down from i
        rjloop:
        mov.f32 $r18, s[$r15]
        mov.f32 $r19, s[$r16]
        mul.f32 $r18, $r18, $r19
        sub.f32 $r14, $r14, $r18
        add.u32 $r15, $r15, 0x4
        add.u32 $r16, $r16, {bs4}
        add.u32 $r17, $r17, -1
        set.ne.u32.u32 $p0/$o127, $r17, $r124
        @$p0.ne bra rjloop
        mov.f32 s[$r13], $r14
        add.u32 $r11, $r11, 0x1
        set.ne.u32.u32 $p0/$o127, $r11, {bs}
        @$p0.ne bra riloop
        bra join2
        colcompute:
        // ---- col half: xU = b solve
        //   col[tx][i] = (col[tx][i] - sum_j<i col[tx][j]*dia[j][i]) / dia[i][i]
        add.u32 $r10, $r2, {col_base}      // &col[tx][0]
        mov.u32 $r11, $r124                // i = 0
        ciloop:
        shl.u32 $r12, $r11, 0x2            // i*4
        add.u32 $r13, $r10, $r12           // &col[tx][i]
        mov.f32 $r14, s[$r13]
        mov.u32 $r15, $r10                 // &col[tx][0]
        add.u32 $r16, $r12, {dia}          // &dia[0][i]
        mov.u32 $r17, $r11                 // j counts down from i
        set.ne.u32.u32 $p0/$o127, $r17, $r124
        @$p0.eq bra cdiv
        cjloop:
        mov.f32 $r18, s[$r15]
        mov.f32 $r19, s[$r16]
        mul.f32 $r18, $r18, $r19
        sub.f32 $r14, $r14, $r18
        add.u32 $r15, $r15, 0x4
        add.u32 $r16, $r16, {bs4}
        add.u32 $r17, $r17, -1
        set.ne.u32.u32 $p0/$o127, $r17, $r124
        @$p0.ne bra cjloop
        cdiv:
        shl.u32 $r24, $r11, {bs2_shift}
        add.u32 $r24, $r24, $r12
        add.u32 $r24, $r24, {dia}          // &dia[i][i]
        mov.f32 $r25, s[$r24]
        div.f32 $r14, $r14, $r25
        mov.f32 s[$r13], $r14
        add.u32 $r11, $r11, 0x1
        set.ne.u32.u32 $p0/$o127, $r11, {bs}
        @$p0.ne bra ciloop
        join2:
        // threads update row-tile *columns* but store back *rows*: wait
        // for every column to finish before the writeback
        bar.sync 0x0
        set.ne.u32.u32 $p0/$o127, $r28, $r124
        @$p0.ne bra colstore
        // ---- row half: store row tile back
        mul.lo.u32 $r20, $r1, {m4}
        add.u32 $r20, $r20, s[0x0010]
        add.u32 $r20, $r20, {bs4g}         // &a[tx][BS]
        shl.u32 $r21, $r1, {bs2_shift}
        add.u32 $r21, $r21, {row_base}
        mov.u32 $r22, {bs}
        rstore:
        mov.f32 $r23, s[$r21]
        st.global.f32 [$r20], $r23
        add.u32 $r20, $r20, 0x4
        add.u32 $r21, $r21, 0x4
        add.u32 $r22, $r22, -1
        set.ne.u32.u32 $p0/$o127, $r22, $r124
        @$p0.ne bra rstore
        exit
        colstore:
        // ---- col half: store col tile back
        add.u32 $r20, $r1, {bs}
        mul.lo.u32 $r20, $r20, {m4}
        add.u32 $r20, $r20, s[0x0010]      // &a[BS+tx][0]
        mov.u32 $r21, $r10
        mov.u32 $r22, {bs}
        cstore:
        mov.f32 $r23, s[$r21]
        st.global.f32 [$r20], $r23
        add.u32 $r20, $r20, 0x4
        add.u32 $r21, $r21, 0x4
        add.u32 $r22, $r22, -1
        set.ne.u32.u32 $p0/$o127, $r22, $r124
        @$p0.ne bra cstore
        exit
        "#,
        bs = bs,
        bs2_shift = bs.trailing_zeros() + 2,
        dia = DIA,
        row_base = row_base,
        col_base = col_base,
        m4 = m(g) * 4,
        bs4 = bs * 4,
        bs4g = bs * 4,
    )
}

/// Host-side reference of K44 (row-tile forward substitution and col-tile
/// `xU = b` solve against the *unfactored* diagonal tile, as launched).
#[must_use]
pub fn k44_reference(a: &[f32], mm: usize, bs: usize) -> Vec<f32> {
    let mut out = a.to_vec();
    let dia = |r: usize, c: usize| a[r * mm + c];
    // Row tile: row[i][tx] -= sum_{j<i} dia[i][j] * row[j][tx], in place,
    // increasing i (reads already-updated rows j < i).
    for tx in 0..bs {
        for i in 1..bs {
            let mut acc = out[i * mm + bs + tx];
            for j in 0..i {
                acc -= dia(i, j) * out[j * mm + bs + tx];
            }
            out[i * mm + bs + tx] = acc;
        }
    }
    // Col tile: col[tx][i] = (col[tx][i] - sum_{j<i} col[tx][j] * dia(j,i)) / dia(i,i).
    for tx in 0..bs {
        for i in 0..bs {
            let mut acc = out[(bs + tx) * mm + i];
            for j in 0..i {
                acc -= out[(bs + tx) * mm + j] * dia(j, i);
            }
            out[(bs + tx) * mm + i] = acc / dia(i, i);
        }
    }
    out
}

/// Builds `lud_perimeter` (K44).
#[must_use]
pub fn k44(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("lud_perimeter", &k44_source(&g)).expect("lud k44 assembles");
    let n = m(&g) as usize;
    Workload::new(
        "LUD",
        "lud_perimeter",
        "K44",
        Suite::Rodinia,
        scale,
        program,
        (1, 1),
        (2 * g.bs, 1, 1),
        vec![0],
        base_memory(&g),
        (0, n * n),
        Some(PaperReference {
            threads: 32,
            fault_sites: 1.75e6,
        }),
    )
}

// --- K45: lud_internal -----------------------------------------------------

fn k45_source(g: &Geom) -> String {
    let bs = g.bs;
    let row_base = DIA; // peri_row tile
    let col_base = DIA + bs * bs * 4; // peri_col tile
    let mut src = format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        shl.u32 $r3, $r2, {bs2_shift}      // ty*BS*4
        shl.u32 $r4, $r1, 0x2              // tx*4
        add.u32 $r5, $r3, $r4              // (ty*BS + tx)*4
        mul.lo.u32 $r6, $r2, {m4}
        add.u32 $r6, $r6, $r4
        add.u32 $r6, $r6, s[0x0010]        // &a[ty][tx]
        ld.global.f32 $r7, [$r6+{bsg}]     // a[ty][BS+tx]
        add.u32 $r8, $r5, {row_base}
        mov.f32 s[$r8], $r7                // row[ty][tx]
        mul.lo.u32 $r9, $r2, {m4}
        add.u32 $r9, $r9, $r4
        add.u32 $r9, $r9, s[0x0010]
        ld.global.f32 $r10, [$r9+{bsrows}] // a[BS+ty][tx]
        add.u32 $r11, $r5, {col_base}
        mov.f32 s[$r11], $r10              // col[ty][tx]
        bar.sync 0x0
        // acc = a[BS+ty][BS+tx]
        mul.lo.u32 $r12, $r2, {m4}
        add.u32 $r12, $r12, $r4
        add.u32 $r12, $r12, s[0x0010]
        add.u32 $r12, $r12, {interior}     // &a[BS+ty][BS+tx]
        ld.global.f32 $r13, [$r12]
        add.u32 $r14, $r3, {col_base}      // &col[ty][0]
        add.u32 $r15, $r4, {row_base}      // &row[0][tx]
"#,
        bs2_shift = bs.trailing_zeros() + 2,
        m4 = m(g) * 4,
        bsg = bs * 4,
        bsrows = bs * m(g) * 4,
        row_base = row_base,
        col_base = col_base,
        interior = bs * m(g) * 4 + bs * 4,
    );
    // Fully unrolled BS-step dot product (the paper's compiler unrolled it
    // too: Table VII lists K45 as loop-free).
    for k in 0..bs {
        src.push_str(&format!(
            "        mov.f32 $r16, s[$r14+{koff}]\n        mov.f32 $r17, s[$r15+{krow}]\n        mul.f32 $r16, $r16, $r17\n        sub.f32 $r13, $r13, $r16\n",
            koff = k * 4,
            krow = k * bs * 4,
        ));
    }
    src.push_str("        st.global.f32 [$r12], $r13\n        exit\n");
    src
}

/// Host-side reference of K45: `a[BS+ty][BS+tx] -= sum_k col[ty][k] * row[k][tx]`.
#[must_use]
pub fn k45_reference(a: &[f32], mm: usize, bs: usize) -> Vec<f32> {
    let mut out = a.to_vec();
    for ty in 0..bs {
        for tx in 0..bs {
            let mut acc = a[(bs + ty) * mm + bs + tx];
            for k in 0..bs {
                acc -= a[(bs + ty) * mm + k] * a[k * mm + bs + tx];
            }
            out[(bs + ty) * mm + bs + tx] = acc;
        }
    }
    out
}

/// Builds `lud_internal` (K45).
#[must_use]
pub fn k45(scale: Scale) -> Workload {
    let g = geom(scale);
    let program = assemble("lud_internal", &k45_source(&g)).expect("lud k45 assembles");
    let n = m(&g) as usize;
    Workload::new(
        "LUD",
        "lud_internal",
        "K45",
        Suite::Rodinia,
        scale,
        program,
        (1, 1),
        (g.bs, g.bs, 1),
        vec![0],
        base_memory(&g),
        (0, n * n),
        Some(PaperReference {
            threads: 256,
            fault_sites: 6.84e5,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};

    fn run(w: &Workload) -> Vec<f32> {
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let (addr, len) = w.output_region();
        memory
            .read_words(addr, len)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect()
    }

    #[test]
    fn k46_matches_reference() {
        let g = geom(Scale::Eval);
        let got = run(&k46(Scale::Eval));
        let want = k46_reference(&matrix(&g), m(&g) as usize, g.bs as usize);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "word {i}");
        }
    }

    #[test]
    fn k44_matches_reference() {
        let g = geom(Scale::Eval);
        let got = run(&k44(Scale::Eval));
        let want = k44_reference(&matrix(&g), m(&g) as usize, g.bs as usize);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "word {i}");
        }
    }

    #[test]
    fn k45_matches_reference() {
        let g = geom(Scale::Eval);
        let got = run(&k45(Scale::Eval));
        let want = k45_reference(&matrix(&g), m(&g) as usize, g.bs as usize);
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "word {i}");
        }
    }

    #[test]
    fn k45_is_loop_free() {
        let w = k45(Scale::Eval);
        let p = w.program();
        assert!(
            p.cfg().loops(p).is_empty(),
            "internal kernel must be unrolled"
        );
    }

    #[test]
    fn k44_has_two_thread_families() {
        let w = k44(Scale::Eval);
        let launch = w.launch();
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let icnt = tracer.finish().icnt;
        let bs = geom(Scale::Eval).bs as usize;
        assert!(icnt[..bs].iter().all(|&c| c == icnt[0]));
        assert!(icnt[bs..].iter().all(|&c| c == icnt[bs]));
        assert_ne!(icnt[0], icnt[bs]);
    }
}
