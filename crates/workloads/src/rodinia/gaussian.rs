//! Gaussian Elimination — Rodinia `Fan1` / `Fan2` kernels.
//!
//! The application launches `Fan1`+`Fan2` once per elimination step `t`.
//! The paper injects four dynamic invocations: K1/K2 are `Fan1`/`Fan2` at
//! the first step, K125/K126 the same kernels at a late step, where far
//! fewer threads pass the `t`-dependent range guards — which is why their
//! Table I site counts are much smaller at identical thread counts.
//!
//! `Fan1` computes the multiplier column `m[·][t]`; `Fan2` applies the row
//! updates (and, for the first column of threads, the right-hand side).

use fsp_isa::assemble;
use fsp_sim::MemBlock;

use crate::data::DataGen;
use crate::{PaperReference, Scale, Suite, Workload};

struct Geom {
    /// Matrix dimension.
    size: u32,
    /// Fan1 block size.
    b1: u32,
    /// Fan1 grid size.
    g1: u32,
    /// Fan2 block edge (square blocks).
    b2: u32,
    /// Fan2 grid edge (square grids).
    g2: u32,
    /// Elimination step of the "early" invocation.
    t_early: u32,
    /// Elimination step of the "late" invocation (the paper's t = 124).
    t_late: u32,
}

fn geom(scale: Scale) -> Geom {
    match scale {
        // Fan1: 512 threads; Fan2: 4096 threads (Table I).
        Scale::Paper => Geom {
            size: 64,
            b1: 256,
            g1: 2,
            b2: 16,
            g2: 4,
            t_early: 0,
            t_late: 48,
        },
        // Fan1: 64 threads; Fan2: 256 threads.
        Scale::Eval => Geom {
            size: 16,
            b1: 32,
            g1: 2,
            b2: 8,
            g2: 2,
            t_early: 0,
            t_late: 8,
        },
    }
}

fn fan1_source(g: &Geom, t: u32) -> String {
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %ctaid.x
        shl.u32 $r3, $r2, {b_shift}
        add.u32 $r3, $r3, $r1              // tid
        set.lt.u32.u32 $p0/$o127, $r3, {limit}
        @$p0.eq bra lexit                  // tid >= size-1-t
        add.u32 $r4, $r3, {t_plus1}        // row = tid + t + 1
        mul.lo.u32 $r5, $r4, {size4}
        add.u32 $r5, $r5, {t4}             // (row*size + t) * 4
        add.u32 $r6, $r5, s[0x0010]        // &a[row][t]
        ld.global.f32 $r7, [$r6]
        mov.u32 $r9, s[0x0010]
        ld.global.f32 $r10, [$r9+{diag}]   // a[t][t]
        div.f32 $r7, $r7, $r10
        add.u32 $r11, $r5, s[0x0014]       // &m[row][t]
        st.global.f32 [$r11], $r7
        lexit: exit
        "#,
        b_shift = g.b1.trailing_zeros(),
        limit = g.size - 1 - t,
        t_plus1 = t + 1,
        size4 = g.size * 4,
        t4 = t * 4,
        diag = (t * g.size + t) * 4,
    )
}

fn fan2_source(g: &Geom, t: u32) -> String {
    format!(
        r#"
        cvt.u32.u16 $r1, %tid.x
        cvt.u32.u16 $r2, %tid.y
        cvt.u32.u16 $r3, %ctaid.x
        cvt.u32.u16 $r4, %ctaid.y
        shl.u32 $r5, $r3, {b_shift}
        add.u32 $r5, $r5, $r1              // xidx
        shl.u32 $r6, $r4, {b_shift}
        add.u32 $r6, $r6, $r2              // yidx
        set.lt.u32.u32 $p0/$o127, $r5, {xlimit}
        @$p0.eq bra lexit                  // xidx >= size-1-t
        set.lt.u32.u32 $p0/$o127, $r6, {ylimit}
        @$p0.eq bra lexit                  // yidx >= size-t
        add.u32 $r7, $r5, {t_plus1}        // row = xidx + 1 + t
        add.u32 $r8, $r6, {t}              // col = yidx + t
        mul.lo.u32 $r9, $r7, {size4}
        add.u32 $r10, $r9, {t4}
        add.u32 $r10, $r10, s[0x0014]      // &m[row][t]
        ld.global.f32 $r11, [$r10]         // multiplier
        shl.u32 $r12, $r8, 0x2
        add.u32 $r13, $r9, $r12
        add.u32 $r13, $r13, s[0x0010]      // &a[row][col]
        ld.global.f32 $r14, [$r13]
        add.u32 $r15, $r12, s[0x0010]
        ld.global.f32 $r16, [$r15+{trow}]  // a[t][col]
        mul.f32 $r16, $r11, $r16
        sub.f32 $r14, $r14, $r16
        st.global.f32 [$r13], $r14
        set.ne.u32.u32 $p0/$o127, $r6, $r124
        @$p0.ne bra lexit                  // only yidx == 0 updates b
        shl.u32 $r17, $r7, 0x2
        add.u32 $r17, $r17, s[0x0018]      // &b[row]
        ld.global.f32 $r18, [$r17]
        mov.u32 $r19, s[0x0018]
        ld.global.f32 $r20, [$r19+{t4}]    // b[t]
        mul.f32 $r20, $r11, $r20
        sub.f32 $r18, $r18, $r20
        st.global.f32 [$r17], $r18
        lexit: exit
        "#,
        b_shift = g.b2.trailing_zeros(),
        xlimit = g.size - 1 - t,
        ylimit = g.size - t,
        t_plus1 = t + 1,
        t = t,
        size4 = g.size * 4,
        t4 = t * 4,
        trow = t * g.size * 4,
    )
}

fn memory(g: &Geom) -> MemBlock {
    let n = g.size as usize;
    let words = n * n;
    // Layout: a | m | b
    let mut memory = MemBlock::with_words(2 * words + n);
    let mut a = DataGen::new("gaussian.a").f32_buffer(words, 1.0, 2.0);
    for i in 0..n {
        a[i * n + i] += 10.0; // diagonal dominance keeps Fan1's divisor sane
    }
    memory.write_f32_slice(0, &a);
    memory.write_f32_slice(
        (2 * words * 4) as u32,
        &DataGen::new("gaussian.b").f32_buffer(n, 1.0, 2.0),
    );
    memory
}

fn fan1(scale: Scale, id: &'static str, t: u32, paper: PaperReference) -> Workload {
    let g = geom(scale);
    let program = assemble("Fan1", &fan1_source(&g, t)).expect("fan1 assembles");
    let n = g.size as usize;
    let words = n * n;
    Workload::new(
        "Gaussian",
        "Fan1",
        id,
        Suite::Rodinia,
        scale,
        program,
        (g.g1, 1),
        (g.b1, 1, 1),
        vec![0, (words * 4) as u32, (2 * words * 4) as u32],
        memory(&g),
        ((words * 4) as u32, words), // the multiplier matrix m
        Some(paper),
    )
}

fn fan2(scale: Scale, id: &'static str, t: u32, paper: PaperReference) -> Workload {
    // Fan2 reads m, which Fan1 produces: pre-run Fan1 so the image is the
    // mid-application state.
    use fsp_inject::InjectionTarget as _;
    let f1 = fan1(scale, "setup", t, paper);
    let mut mem = f1.init_memory();
    fsp_sim::Simulator::new()
        .run(&f1.launch(), &mut mem, &mut fsp_sim::NopHook)
        .expect("fan1 pre-run succeeds");
    let g2 = geom(scale);
    let program = assemble("Fan2", &fan2_source(&g2, t)).expect("fan2 assembles");
    let n = g2.size as usize;
    let words = n * n;
    Workload::new(
        "Gaussian",
        "Fan2",
        id,
        Suite::Rodinia,
        scale,
        program,
        (g2.g2, g2.g2),
        (g2.b2, g2.b2, 1),
        vec![0, (words * 4) as u32, (2 * words * 4) as u32],
        mem,
        (0, 2 * words + n), // a, m and b are all outputs
        Some(paper),
    )
}

/// `Fan1` at the first elimination step (paper kernel K1).
#[must_use]
pub fn k1(scale: Scale) -> Workload {
    let g = geom(scale);
    fan1(
        scale,
        "K1",
        g.t_early,
        PaperReference {
            threads: 512,
            fault_sites: 1.63e5,
        },
    )
}

/// `Fan2` at the first elimination step (paper kernel K2).
#[must_use]
pub fn k2(scale: Scale) -> Workload {
    let g = geom(scale);
    fan2(
        scale,
        "K2",
        g.t_early,
        PaperReference {
            threads: 4096,
            fault_sites: 4.92e6,
        },
    )
}

/// `Fan1` at a late elimination step (paper kernel K125).
#[must_use]
pub fn k125(scale: Scale) -> Workload {
    let g = geom(scale);
    fan1(
        scale,
        "K125",
        g.t_late,
        PaperReference {
            threads: 512,
            fault_sites: 1.09e5,
        },
    )
}

/// `Fan2` at a late elimination step (paper kernel K126).
#[must_use]
pub fn k126(scale: Scale) -> Workload {
    let g = geom(scale);
    fan2(
        scale,
        "K126",
        g.t_late,
        PaperReference {
            threads: 4096,
            fault_sites: 8.79e5,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsp_inject::InjectionTarget;
    use fsp_sim::{NopHook, Simulator, Tracer};

    fn icnt_groups(w: &Workload) -> Vec<u32> {
        let launch = w.launch();
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .unwrap();
        let mut icnts = tracer.finish().icnt;
        icnts.sort_unstable();
        icnts.dedup();
        icnts
    }

    #[test]
    fn fan1_two_paths() {
        let groups = icnt_groups(&k1(Scale::Eval));
        assert_eq!(groups.len(), 2, "{groups:?}");
    }

    #[test]
    fn fan2_three_paths() {
        // exit / row update / row + rhs update
        let groups = icnt_groups(&k2(Scale::Eval));
        assert_eq!(groups.len(), 3, "{groups:?}");
    }

    #[test]
    fn late_invocations_have_fewer_sites() {
        for (early, late) in [
            (k1(Scale::Eval), k125(Scale::Eval)),
            (k2(Scale::Eval), k126(Scale::Eval)),
        ] {
            let sites = |w: &Workload| {
                let launch = w.launch();
                let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
                let mut memory = w.init_memory();
                Simulator::new()
                    .run(&launch, &mut memory, &mut tracer)
                    .unwrap();
                tracer.finish().total_fault_sites()
            };
            assert!(
                sites(&late) < sites(&early),
                "{}: late invocation should have fewer sites",
                late.id()
            );
        }
    }

    #[test]
    fn fan1_divides_by_pivot() {
        let w = k1(Scale::Eval);
        let g = geom(Scale::Eval);
        let n = g.size as usize;
        let mut memory = w.init_memory();
        let a: Vec<f32> = memory
            .read_words(0, n * n)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        Simulator::new()
            .run(&w.launch(), &mut memory, &mut NopHook)
            .unwrap();
        let m: Vec<f32> = memory
            .read_words((n * n * 4) as u32, n * n)
            .iter()
            .map(|&x| f32::from_bits(x))
            .collect();
        for row in 1..n {
            let want = a[row * n] / a[0];
            assert_eq!(m[row * n].to_bits(), want.to_bits(), "row {row}");
        }
    }
}
