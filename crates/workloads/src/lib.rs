#![warn(missing_docs)]
//! The paper's GPGPU workloads: 10 applications (17 kernels) from the
//! Rodinia and Polybench suites, hand-written in the PTXPlus-like `fsp-isa`
//! assembly from the original CUDA sources.
//!
//! Each kernel reproduces the *structure* the pruning methodology depends
//! on — thread/CTA geometry, control-flow divergence (and therefore the
//! per-thread dynamic-instruction-count groups of Tables III/IV), loop trip
//! counts (Table VII) and destination-register mix (Table I's fault-site
//! magnitudes).
//!
//! Two scales are provided:
//!
//! * [`Scale::Paper`] — the paper's thread counts (e.g. 9216 threads for
//!   HotSpot, 16384 for GEMM), used for fault-site accounting (Table I)
//!   and grouping structure (Tables III/IV);
//! * [`Scale::Eval`] — reduced geometry with identical structure, used for
//!   injection campaigns, where each of the thousands of runs re-executes
//!   the kernel.
//!
//! # Example
//!
//! ```
//! use fsp_workloads::{Scale, Workload};
//! use fsp_inject::InjectionTarget;
//!
//! let kernels = fsp_workloads::all(Scale::Eval);
//! assert_eq!(kernels.len(), 17);
//! let conv = fsp_workloads::by_id("2dconv", Scale::Paper).unwrap();
//! assert_eq!(conv.launch().num_threads(), 8192);
//! ```

mod data;
mod fingerprint;
pub mod polybench;
pub mod rodinia;

use std::sync::Arc;

use fsp_inject::InjectionTarget;
use fsp_isa::KernelProgram;
use fsp_sim::{Launch, MemBlock};

pub use data::DataGen;
pub use fingerprint::{program_fingerprint, Fnv1a};

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia heterogeneous-computing suite.
    Rodinia,
    /// Polybench/GPU.
    Polybench,
}

impl Suite {
    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Suite::Rodinia => "Rodinia",
            Suite::Polybench => "Polybench",
        }
    }
}

/// Problem scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's geometry (Table I thread counts).
    Paper,
    /// Reduced geometry with the same structure, for injection campaigns.
    Eval,
}

/// Reference numbers from the paper's Table I, for side-by-side reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperReference {
    /// "# Threads" column.
    pub threads: u32,
    /// "# Total Fault Sites" column.
    pub fault_sites: f64,
}

/// A fully assembled workload: kernel program, geometry, input image and
/// output region, implementing [`InjectionTarget`].
#[derive(Debug, Clone)]
pub struct Workload {
    app: &'static str,
    kernel: &'static str,
    id: &'static str,
    suite: Suite,
    scale: Scale,
    program: Arc<KernelProgram>,
    grid: (u32, u32),
    block: (u32, u32, u32),
    params: Vec<u32>,
    memory: MemBlock,
    output: (u32, usize),
    paper: Option<PaperReference>,
}

impl Workload {
    /// Assembles a workload. Used by the per-kernel constructors in
    /// [`rodinia`] and [`polybench`].
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        app: &'static str,
        kernel: &'static str,
        id: &'static str,
        suite: Suite,
        scale: Scale,
        program: KernelProgram,
        grid: (u32, u32),
        block: (u32, u32, u32),
        params: Vec<u32>,
        memory: MemBlock,
        output: (u32, usize),
        paper: Option<PaperReference>,
    ) -> Self {
        Workload {
            app,
            kernel,
            id,
            suite,
            scale,
            program: Arc::new(program),
            grid,
            block,
            params,
            memory,
            output,
            paper,
        }
    }

    /// Application name (e.g. `"HotSpot"`).
    #[must_use]
    pub fn app(&self) -> &'static str {
        self.app
    }

    /// Kernel function name (e.g. `"calculate_temp"`).
    #[must_use]
    pub fn kernel(&self) -> &'static str {
        self.kernel
    }

    /// Kernel id as the paper numbers it (e.g. `"K125"`).
    #[must_use]
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// Suite of origin.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Scale this instance was built at.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Table I reference numbers, when the paper reports this kernel.
    #[must_use]
    pub fn paper_reference(&self) -> Option<PaperReference> {
        self.paper
    }

    /// The kernel program.
    #[must_use]
    pub fn program(&self) -> &Arc<KernelProgram> {
        &self.program
    }
}

impl InjectionTarget for Workload {
    fn name(&self) -> &str {
        self.id
    }

    fn launch(&self) -> Launch {
        Launch::new(Arc::clone(&self.program))
            .grid(self.grid.0, self.grid.1)
            .block(self.block.0, self.block.1, self.block.2)
            .params(self.params.iter().copied())
    }

    fn init_memory(&self) -> MemBlock {
        self.memory.clone()
    }

    fn output_region(&self) -> (u32, usize) {
        self.output
    }
}

/// All 17 kernels in the paper's Table I order (NN, which only appears in
/// Table VII, comes last).
#[must_use]
pub fn all(scale: Scale) -> Vec<Workload> {
    vec![
        rodinia::hotspot::k1(scale),
        rodinia::kmeans::k1(scale),
        rodinia::kmeans::k2(scale),
        rodinia::gaussian::k1(scale),
        rodinia::gaussian::k2(scale),
        rodinia::gaussian::k125(scale),
        rodinia::gaussian::k126(scale),
        rodinia::pathfinder::k1(scale),
        rodinia::lud::k44(scale),
        rodinia::lud::k45(scale),
        rodinia::lud::k46(scale),
        polybench::conv2d::k1(scale),
        polybench::mvt::k1(scale),
        polybench::mm2::k1(scale),
        polybench::gemm::k1(scale),
        polybench::syrk::k1(scale),
        rodinia::nn::k1(scale),
    ]
}

/// Looks a kernel up by its registry id (e.g. `"gemm"`, `"lud_k46"`).
#[must_use]
pub fn by_id(id: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.registry_id() == id)
}

/// All registry ids, in Table I order.
#[must_use]
pub fn registry_ids() -> Vec<&'static str> {
    vec![
        "hotspot",
        "kmeans_k1",
        "kmeans_k2",
        "gaussian_k1",
        "gaussian_k2",
        "gaussian_k125",
        "gaussian_k126",
        "pathfinder",
        "lud_k44",
        "lud_k45",
        "lud_k46",
        "2dconv",
        "mvt",
        "2mm",
        "gemm",
        "syrk",
        "nn",
    ]
}

impl Workload {
    /// The stable registry id used by [`by_id`] and the CLI.
    #[must_use]
    pub fn registry_id(&self) -> &'static str {
        match (self.app, self.id) {
            ("HotSpot", _) => "hotspot",
            ("K-Means", "K1") => "kmeans_k1",
            ("K-Means", "K2") => "kmeans_k2",
            ("Gaussian", "K1") => "gaussian_k1",
            ("Gaussian", "K2") => "gaussian_k2",
            ("Gaussian", "K125") => "gaussian_k125",
            ("Gaussian", "K126") => "gaussian_k126",
            ("PathFinder", _) => "pathfinder",
            ("LUD", "K44") => "lud_k44",
            ("LUD", "K45") => "lud_k45",
            ("LUD", "K46") => "lud_k46",
            ("2DCONV", _) => "2dconv",
            ("MVT", _) => "mvt",
            ("2MM", _) => "2mm",
            ("GEMM", _) => "gemm",
            ("SYRK", _) => "syrk",
            ("NN", _) => "nn",
            _ => unreachable!("unregistered workload {}/{}", self.app, self.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids = registry_ids();
        let all = all(Scale::Eval);
        assert_eq!(all.len(), ids.len());
        for (w, id) in all.iter().zip(&ids) {
            assert_eq!(w.registry_id(), *id);
        }
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn by_id_round_trips() {
        for id in registry_ids() {
            let w = by_id(id, Scale::Eval).unwrap_or_else(|| panic!("missing {id}"));
            assert_eq!(w.registry_id(), id);
        }
        assert!(by_id("nonesuch", Scale::Eval).is_none());
    }

    #[test]
    fn paper_scale_thread_counts_match_table1() {
        for w in all(Scale::Paper) {
            if let Some(paper) = w.paper_reference() {
                assert_eq!(
                    w.launch().num_threads(),
                    paper.threads,
                    "{} thread count mismatch",
                    w.registry_id()
                );
            }
        }
    }

    #[test]
    fn every_workload_runs_fault_free() {
        for w in all(Scale::Eval) {
            let exp = fsp_inject::Experiment::prepare(&w)
                .unwrap_or_else(|e| panic!("{} faults fault-free: {e}", w.registry_id()));
            assert!(exp.fault_free_instructions() > 0);
        }
    }
}
