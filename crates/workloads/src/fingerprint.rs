//! Stable content fingerprints for kernels and launch configurations.
//!
//! The campaign orchestration service (`fsp-serve`) keys its persistent
//! outcome store by *(kernel fingerprint, launch-config hash, fault model,
//! site)*: two campaigns share cached outcomes exactly when they run the
//! same program text under the same geometry, parameters and input image.
//! The fingerprints are therefore content-addressed — derived from the
//! kernel's disassembly and the launch's observable inputs, never from
//! registry names or pointer identity — and stable across processes.

use fsp_isa::KernelProgram;

use crate::Workload;

// The hasher itself lives at the bottom of the crate graph so every layer
// (including ones this crate depends on) shares one implementation; this
// re-export keeps `fsp_workloads::Fnv1a` a stable path, and the reference
// vectors stay asserted in this module's tests.
pub use fsp_obs::Fnv1a;

/// Fingerprints a kernel program by its disassembly text.
///
/// The disassembler is a stable, injective rendering of the instruction
/// stream, so two programs collide only by (64-bit) hash accident.
#[must_use]
pub fn program_fingerprint(program: &KernelProgram) -> u64 {
    let mut h = Fnv1a::new();
    h.write(program.to_string().as_bytes());
    h.finish()
}

impl Workload {
    /// Stable content fingerprint of the kernel program (see
    /// [`program_fingerprint`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        program_fingerprint(&self.program)
    }

    /// Stable hash of the launch configuration: grid/block geometry, kernel
    /// parameters, initial memory image and output region — everything
    /// besides the program that determines an injection outcome.
    #[must_use]
    pub fn launch_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u32(self.grid.0);
        h.write_u32(self.grid.1);
        h.write_u32(self.block.0);
        h.write_u32(self.block.1);
        h.write_u32(self.block.2);
        h.write_u64(self.params.len() as u64);
        for &p in &self.params {
            h.write_u32(p);
        }
        let words = self.memory.to_vec();
        h.write_u64(words.len() as u64);
        for &w in &words {
            h.write_u32(w);
        }
        h.write_u32(self.output.0);
        h.write_u64(self.output.1 as u64);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_F739_67E8);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let ids = crate::registry_ids();
        let mut seen = std::collections::HashSet::new();
        for id in &ids {
            let a = crate::by_id(id, Scale::Eval).unwrap();
            let b = crate::by_id(id, Scale::Eval).unwrap();
            assert_eq!(a.fingerprint(), b.fingerprint(), "{id} unstable");
            assert_eq!(a.launch_hash(), b.launch_hash(), "{id} unstable");
            seen.insert((a.fingerprint(), a.launch_hash()));
        }
        assert_eq!(seen.len(), ids.len(), "fingerprint collision in registry");
    }

    #[test]
    fn scales_do_not_collide() {
        // Paper- and eval-scale instances of the same kernel must never
        // share a cache key: the geometry (and the scale-parameterized
        // program text) differ.
        let eval = crate::by_id("gemm", Scale::Eval).unwrap();
        let paper = crate::by_id("gemm", Scale::Paper).unwrap();
        assert_ne!(
            (eval.fingerprint(), eval.launch_hash()),
            (paper.fingerprint(), paper.launch_hash())
        );
        assert_ne!(eval.launch_hash(), paper.launch_hash());
    }
}
