//! Facade crate for the Fault Site Pruning reproduction.
//!
//! Re-exports the workspace crates under one roof so downstream users can
//! depend on a single package:
//!
//! - [`isa`] — PTXPlus-like ISA, assembler, CFG/loop analysis
//! - [`sim`] — deterministic functional SIMT simulator
//! - [`inject`] — fault model, site enumeration, injection campaigns
//! - [`stats`] — statistical machinery (sample sizes, profiles)
//! - [`analyze`] — static dataflow + abstract interpretation: Stage 0 ACE
//!   pruning, predicted-DUE classification, equivalence classes, linter
//! - [`pruning`] — the paper's contribution: progressive fault-site pruning
//! - [`workloads`] — Rodinia/Polybench kernels in PTXPlus-like assembly
//! - [`serve`] — campaign orchestration service: persistent outcome
//!   store, resumable job engine, HTTP API
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! system inventory.

pub use fsp_analyze as analyze;
pub use fsp_core as pruning;
pub use fsp_inject as inject;
pub use fsp_isa as isa;
pub use fsp_serve as serve;
pub use fsp_sim as sim;
pub use fsp_stats as stats;
pub use fsp_workloads as workloads;
