//! Differential oracle for the checkpoint-resume fast path.
//!
//! The campaign engine has two classification paths: the fast path
//! (resume from a golden checkpoint, early-convergence exit) and the slow
//! path (full re-execution from t=0, output comparison only), kept behind
//! `Experiment::set_fast_path` exactly so this test can exist. Because
//! the simulator is deterministic, the two must agree *bit for bit* — on
//! every outcome, and on every SDC severity — across every registry
//! kernel, every fault model and any worker count.

use fault_site_pruning::inject::{
    Experiment, FaultModel, FaultSite, InjectionTarget, WeightedSite,
};
use fault_site_pruning::workloads::{self, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random sites drawn per kernel, on top of the deterministic first/last
/// site of the space (the last site exercises the deepest checkpoint).
const SAMPLED_SITES: usize = 8;

fn sites_for(space: &fault_site_pruning::inject::SiteSpace, seed: u64) -> Vec<WeightedSite> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = space.total_sites();
    let mut sites: Vec<FaultSite> = vec![space.site_at(0), space.site_at(total - 1)];
    sites.extend(space.sample_many(SAMPLED_SITES, &mut rng));
    sites.into_iter().map(WeightedSite::from).collect()
}

/// Fast-path campaigns reproduce slow-path outcome vectors and SDC
/// severities on all kernels, under every fault model, at worker counts
/// 1 and 4.
#[test]
fn fast_path_is_byte_identical_to_slow_path() {
    for w in workloads::all(Scale::Eval) {
        let id = w.registry_id();
        let fast = Experiment::prepare(&w).expect("fault-free run");
        let slow = Experiment::prepare(&w)
            .expect("fault-free run")
            .with_fast_path(false);
        // Kernels shorter than the default checkpoint interval legitimately
        // capture none (the whole run *is* the suffix).
        if fast.fault_free_instructions() >= 1024 {
            assert!(
                fast.num_checkpoints() > 0,
                "{id}: launch retired {} instructions but captured no checkpoints",
                fast.fault_free_instructions()
            );
        }
        let space = fast.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, 0xF5EED ^ fast.fault_free_instructions());
        for model in FaultModel::ALL {
            let f1 = fast.run_campaign_with(&sites, model, 1);
            let f4 = fast.run_campaign_with(&sites, model, 4);
            let s1 = slow.run_campaign_with(&sites, model, 1);
            let s4 = slow.run_campaign_with(&sites, model, 4);
            assert_eq!(
                f1.outcomes, s1.outcomes,
                "{id}: fast/slow outcomes diverged under {model:?}"
            );
            assert_eq!(
                f1.outcomes, f4.outcomes,
                "{id}: fast path not worker-count invariant under {model:?}"
            );
            assert_eq!(
                s1.outcomes, s4.outcomes,
                "{id}: slow path not worker-count invariant under {model:?}"
            );
            assert_eq!(f1.profile, s1.profile, "{id}: profiles diverged");
            // SDC severities must match exactly, not just the class.
            for (ws, outcome) in sites.iter().zip(&f1.outcomes) {
                if *outcome == fault_site_pruning::stats::Outcome::Sdc {
                    let (of, sevf) = fast.run_one_detailed(ws.site, model);
                    let (os, sevs) = slow.run_one_detailed(ws.site, model);
                    assert_eq!(of, os, "{id}: detailed outcome at {:?}", ws.site);
                    assert_eq!(
                        sevf, sevs,
                        "{id}: SDC severity diverged at {:?} under {model:?}",
                        ws.site
                    );
                }
            }
        }
    }
}

/// The fast path actually engages on real kernels: campaigns resume from
/// checkpoints, skip golden-prefix work and take early-convergence exits
/// somewhere in the registry (per-kernel rates vary with site position).
#[test]
fn fast_path_engages_on_registry_kernels() {
    let mut hits = 0u64;
    let mut skipped = 0u64;
    let mut early = 0u64;
    for w in workloads::all(Scale::Eval) {
        let e = Experiment::prepare(&w).expect("fault-free run");
        let space = e.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, 7);
        let run = e.run_campaign_incremental(
            &sites,
            FaultModel::SingleBitFlip,
            4,
            &[],
            &fault_site_pruning::inject::NopObserver,
        );
        assert!(run.is_complete());
        hits += run.checkpoint_hits;
        skipped += run.skipped_instructions;
        early += run.early_converged;
    }
    assert!(hits > 0, "no campaign resumed from a checkpoint");
    assert!(skipped > 0, "checkpoint resumes skipped no prefix work");
    assert!(early > 0, "no injection converged early");
}
