//! Differential oracle for batched multi-lane injection.
//!
//! Batching is a pure amortization: up to N fault sites sharing a resume
//! checkpoint and a CTA ride one golden replay as shadow lanes, but every
//! lane must classify exactly as its own solo run would. Because the
//! simulator is deterministic and a lane budget of 1 routes every site
//! through the solo path untouched, outcome vectors must be byte-identical
//! across *all* batch sizes, fault models and worker counts.

use fault_site_pruning::inject::{
    Experiment, FaultModel, FaultSite, InjectionTarget, WeightedSite, DEFAULT_BATCH, MAX_BATCH,
};
use fault_site_pruning::workloads::{self, Scale};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Batch sizes swept by the oracle: 1 (the solo baseline), a couple of
/// odd-sized partial batches, the default, and the lane-mask ceiling.
const BATCH_SIZES: [usize; 5] = [1, 2, 7, 16, 64];

/// Consecutive sites drawn from the start of the space — same thread /
/// CTA / checkpoint, so batch groups actually fill with multiple lanes.
const DENSE_SITES: u64 = 24;

/// Random sites drawn on top (mostly singleton groups, exercising the
/// solo fallback inside a batched campaign).
const SAMPLED_SITES: usize = 6;

fn sites_for(space: &fault_site_pruning::inject::SiteSpace, seed: u64) -> Vec<WeightedSite> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = space.total_sites();
    let mut sites: Vec<FaultSite> = (0..DENSE_SITES.min(total))
        .map(|i| space.site_at(i))
        .collect();
    sites.push(space.site_at(total - 1));
    sites.extend(space.sample_many(SAMPLED_SITES, &mut rng));
    sites.into_iter().map(WeightedSite::from).collect()
}

/// Outcome vectors are byte-identical across every batch size, on every
/// registry kernel, under every fault model.
#[test]
fn batch_sizes_agree_on_all_kernels_and_models() {
    for w in workloads::all(Scale::Eval) {
        let id = w.registry_id();
        let mut experiment = Experiment::prepare(&w).expect("fault-free run");
        assert_eq!(experiment.batch(), DEFAULT_BATCH, "{id}: default lanes");
        let space = experiment.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, 0xBA7C4 ^ experiment.fault_free_instructions());
        for model in FaultModel::ALL {
            experiment.set_batch(1);
            let baseline = experiment.run_campaign_with(&sites, model, 4);
            for &lanes in &BATCH_SIZES[1..] {
                experiment.set_batch(lanes);
                let batched = experiment.run_campaign_with(&sites, model, 4);
                assert_eq!(
                    baseline.outcomes, batched.outcomes,
                    "{id}: batch {lanes} diverged from batch 1 under {model:?}"
                );
                assert_eq!(
                    baseline.profile, batched.profile,
                    "{id}: batch {lanes} profile diverged under {model:?}"
                );
            }
        }
    }
}

/// Batched campaigns are worker-count invariant: units are claimed by a
/// racing pool, but outcomes index by site position.
#[test]
fn batched_campaign_is_worker_count_invariant() {
    for w in workloads::all(Scale::Eval).into_iter().take(4) {
        let id = w.registry_id();
        let experiment = Experiment::prepare(&w)
            .expect("fault-free run")
            .with_batch(16);
        let space = experiment.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, 11);
        let one = experiment.run_campaign_with(&sites, FaultModel::SingleBitFlip, 1);
        let four = experiment.run_campaign_with(&sites, FaultModel::SingleBitFlip, 4);
        assert_eq!(
            one.outcomes, four.outcomes,
            "{id}: batched outcomes depend on worker count"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Random (kernel, model, batch size, seed) quadruples: the batched
    /// outcome vector equals the batch-1 vector.
    #[test]
    fn random_batched_campaign_matches_solo(
        kernel in 0usize..32,
        model_idx in 0usize..FaultModel::ALL.len(),
        lanes in prop::sample::select(BATCH_SIZES.to_vec()),
        seed in 0u64..1024,
    ) {
        let registry = workloads::all(Scale::Eval);
        let w = &registry[kernel % registry.len()];
        let model = FaultModel::ALL[model_idx];
        let mut experiment = Experiment::prepare(w).expect("fault-free run");
        experiment.set_batch(lanes);
        prop_assert!(experiment.batch() == lanes.clamp(1, MAX_BATCH));
        let space = experiment.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, seed);
        experiment.set_batch(1);
        let solo = experiment.run_campaign_with(&sites, model, 2);
        experiment.set_batch(lanes);
        let batched = experiment.run_campaign_with(&sites, model, 2);
        prop_assert_eq!(
            &solo.outcomes, &batched.outcomes,
            "batch {} diverged from solo under {:?}", lanes, model
        );
        prop_assert_eq!(&solo.profile, &batched.profile);
    }
}
