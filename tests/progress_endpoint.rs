//! Live-analytics surface over the wire: the `/jobs/:id/progress`
//! document, the per-outcome counters on job status and `/metrics`, the
//! self-contained `/dashboard` page, and a served early-stopped job whose
//! result document matches the in-process library path byte-for-byte.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fault_site_pruning::serve::{run_local, Client, Engine, EngineConfig, JobSpec, Json, Server};
use fault_site_pruning::stats::stream_version;

const SAMPLES: usize = 200;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-progress-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Raw GET for non-JSON routes the typed client does not wrap.
fn get_page(addr: &str, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("HTTP response");
    assert!(head.contains("200"), "GET {path}: {head}");
    body.to_owned()
}

/// Every structural invariant of a progress document: five labeled
/// outcome classes, estimates inside their intervals, intervals inside
/// the unit range, and counts consistent with `done`.
fn assert_well_formed(doc: &Json) {
    for field in ["id", "state", "kernel", "mode", "stream_version"] {
        assert!(doc.get(field).is_some(), "progress missing `{field}`");
    }
    assert_eq!(
        doc.get("stream_version").and_then(Json::as_u64),
        Some(stream_version()),
        "estimator version drifted between server and client"
    );
    let outcomes = doc
        .get("outcomes")
        .and_then(Json::as_arr)
        .expect("outcomes array");
    assert_eq!(outcomes.len(), 5, "one entry per outcome class");
    let labels: Vec<&str> = outcomes
        .iter()
        .filter_map(|o| o.get("outcome").and_then(Json::as_str))
        .collect();
    assert_eq!(labels, ["masked", "sdc", "crash", "hang", "detected"]);
    let mut counted = 0;
    for entry in outcomes {
        let estimate = entry.get("estimate").and_then(Json::as_f64).unwrap();
        let lo = entry.get("lo").and_then(Json::as_f64).unwrap();
        let hi = entry.get("hi").and_then(Json::as_f64).unwrap();
        assert!(
            (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
            "interval out of range: [{lo}, {hi}]"
        );
        assert!(
            (lo..=hi).contains(&estimate),
            "estimate {estimate} outside [{lo}, {hi}]"
        );
        counted += entry.get("count").and_then(Json::as_u64).unwrap();
    }
    let done = doc.get("done").and_then(Json::as_u64).unwrap();
    assert!(
        counted <= done,
        "outcome counts {counted} exceed done {done}"
    );
    let achieved = doc.get("achieved_margin").and_then(Json::as_f64).unwrap();
    assert!(achieved >= 0.0, "negative achieved margin {achieved}");
}

#[test]
fn progress_counters_dashboard_and_early_stop_over_the_wire() {
    let dir = tmp_dir();
    let engine = Arc::new(Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine))
        .unwrap()
        .spawn()
        .unwrap();
    let client = Client::new(handle.addr().to_string());

    // Unknown jobs 404 on the progress route too.
    assert!(client.progress("job-999").is_err(), "404 surfaces as Err");

    // Plain job: poll /progress while it runs; completed counts must be
    // monotone and the document well-formed at every observation.
    let spec = JobSpec::sampled("gemm", SAMPLES);
    let id = client.submit(&spec).unwrap();
    let mut last_done = 0;
    loop {
        let progress = client.progress(&id).unwrap();
        assert_well_formed(&progress);
        let done = progress.get("done").and_then(Json::as_u64).unwrap();
        assert!(
            done >= last_done,
            "done went backwards: {last_done} -> {done}"
        );
        last_done = done;
        match progress.get("state").and_then(Json::as_str) {
            Some("queued" | "running") => std::thread::sleep(Duration::from_millis(50)),
            Some("completed") => break,
            other => panic!("job ended in {other:?}"),
        }
    }
    assert_eq!(last_done, SAMPLES as u64, "completed job reports full plan");

    // The status document exposes running per-outcome counts, and they
    // reappear as labeled counters on /metrics.
    let status = client.status(&id).unwrap();
    let counts = status.get("outcomes").expect("status outcome counts");
    let mut total = 0;
    for label in ["masked", "sdc", "crash", "hang", "detected"] {
        let n = counts.get(label).and_then(Json::as_u64).unwrap();
        let metric = client
            .metric(&format!("fsp_job_outcome_total{{outcome=\"{label}\"}}"))
            .unwrap();
        assert_eq!(metric as u64, n, "metrics and status disagree on {label}");
        total += n;
    }
    assert_eq!(total, SAMPLES as u64, "outcome counts cover every site");

    // A progress document for a *finished* plain job: no stop requested,
    // so `margin` is null but the baseline projection is still served.
    let finished = client.progress(&id).unwrap();
    assert_well_formed(&finished);
    assert!(matches!(finished.get("margin"), Some(Json::Null)));
    assert_eq!(
        finished.get("stop_requested").and_then(Json::as_bool),
        Some(false)
    );
    assert!(finished.get("projected_total").is_some());

    // The dashboard is a self-contained HTML page at a stable route.
    let page = get_page(&handle.addr().to_string(), "/dashboard");
    assert!(page.starts_with("<!doctype html>"), "dashboard is HTML");
    assert!(page.contains("/progress"), "dashboard polls progress");

    // Early-stopped served job: completes, reports the stop metadata, and
    // matches the in-process library path byte-for-byte.
    let stop_spec = JobSpec::sampled("gemm", 400).with_stop(0.1, 0.9);
    let stop_id = client.submit(&stop_spec).unwrap();
    let status = client.wait(&stop_id, Duration::from_secs(300)).unwrap();
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed")
    );
    let served = client.result(&stop_id).unwrap();
    assert_eq!(
        served.get("early_stopped").and_then(Json::as_bool),
        Some(true),
        "loose rule must fire at n=400"
    );
    let local = run_local(&stop_spec, 1).unwrap();
    assert_eq!(
        served.to_string(),
        local.to_string(),
        "served early-stopped result must equal the library path"
    );

    // Its final progress document reflects the stopped prefix, not the
    // planned total, and carries the early-stop report.
    let progress = client.progress(&stop_id).unwrap();
    assert_well_formed(&progress);
    assert_eq!(
        progress.get("early_stopped").and_then(Json::as_bool),
        Some(true)
    );
    let injected = progress
        .get("sites_injected")
        .and_then(Json::as_u64)
        .unwrap();
    assert!(injected < 400, "stopped prefix shorter than the plan");
    assert_eq!(
        progress.get("done").and_then(Json::as_u64),
        Some(injected),
        "done must equal the scored prefix after an early stop"
    );
    let achieved = progress
        .get("final_achieved_margin")
        .and_then(Json::as_f64)
        .unwrap();
    assert!(achieved <= 0.1, "achieved {achieved} exceeds requested 0.1");

    handle.stop();
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
