//! Early-stopping equivalence oracle.
//!
//! Three guarantees, per the streaming-analytics design (DESIGN.md §15):
//!
//! 1. **Observer transparency.** With early stopping disabled, the
//!    incremental campaign entry point (the observer hook every served
//!    job now runs through) produces outcome vectors byte-identical to
//!    the blocking pre-hook path — across solo / fast-path / batched
//!    execution and across worker counts, on every registry kernel.
//! 2. **No-fire equivalence.** A stop rule at the paper's operating
//!    point (99.8%, ±0.63%) cannot fire on a plan smaller than its
//!    sample floor, so an early-stop-enabled run must report
//!    `early_stopped: false` and carry exactly the plain run's profile.
//! 3. **Fire soundness.** When a loose rule does fire, the run is
//!    reproducible across reruns and worker counts, injects a strict
//!    prefix of the plan, and its estimate stays within the requested
//!    margin of the full-campaign ground truth. A replay oracle checks
//!    the tracker never fires before the CI condition first holds on the
//!    contiguous prefix.

use fault_site_pruning::inject::{
    Experiment, FaultModel, FaultSite, InjectionTarget, NopObserver, SiteSpace, WeightedSite,
};
use fault_site_pruning::serve::{run_local, JobSpec, Json};
use fault_site_pruning::stats::{EarlyStop, Outcome, StopRule, StreamEstimator};
use fault_site_pruning::workloads::{self, Scale};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dense sites per kernel for the observer-transparency sweep: small
/// enough to keep the 17-kernel x mode x worker grid cheap in debug test
/// runs, large enough to span several scheduler chunks.
const DENSE_SITES: u64 = 8;

/// Random sites layered on top of the dense run (singleton batch groups,
/// exercising the solo fallback inside a batched campaign).
const SAMPLED_SITES: usize = 4;

fn sites_for(space: &SiteSpace, seed: u64) -> Vec<WeightedSite> {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = space.total_sites();
    let mut sites: Vec<FaultSite> = (0..DENSE_SITES.min(total))
        .map(|i| space.site_at(i))
        .collect();
    // Pin the final enumerable site so the sweep always exercises the
    // tail of the space, not just the sampled interior.
    sites.push(space.site_at(total - 1));
    sites.extend(space.sample_many(SAMPLED_SITES, &mut rng));
    sites.into_iter().map(WeightedSite::from).collect()
}

/// Guarantee 1: the incremental (observer-hook) campaign path equals the
/// blocking path byte-for-byte when nothing ever cancels — on all 17
/// kernels, across solo / fast-path / batched execution, for 1/2/4
/// workers.
#[test]
fn incremental_path_matches_blocking_path_on_all_kernels() {
    for w in workloads::all(Scale::Eval) {
        let id = w.registry_id();
        let mut experiment = Experiment::prepare(&w).expect("fault-free run");
        let space = experiment.site_space(0..w.launch().num_threads());
        let sites = sites_for(&space, 0xEA51_0C1E);
        // (fast path, batch lanes): solo replay, checkpoint fast path,
        // batched multi-lane fast path.
        for (fast, lanes) in [(false, 1), (true, 1), (true, 8)] {
            experiment.set_fast_path(fast);
            experiment.set_batch(lanes);
            let blocking = experiment.run_campaign_with(&sites, FaultModel::SingleBitFlip, 1);
            for workers in [1, 2, 4] {
                let incremental = experiment.run_campaign_incremental(
                    &sites,
                    FaultModel::SingleBitFlip,
                    workers,
                    &[],
                    &NopObserver,
                );
                assert!(!incremental.cancelled, "{id}: nop observer cancelled");
                let resolved: Vec<Outcome> = incremental
                    .outcomes
                    .iter()
                    .map(|o| o.expect("uncancelled campaign resolves every site"))
                    .collect();
                assert_eq!(
                    blocking.outcomes, resolved,
                    "{id}: incremental path diverged (fast={fast} lanes={lanes} workers={workers})"
                );
            }
        }
    }
}

/// Guarantee 2: at the paper's operating point the rule's sample floor
/// (hundreds of sites) exceeds these small plans, so early stopping is
/// armed but can never fire — and the result must collapse to the plain
/// run's profile on every kernel, with `early_stopped: false`.
#[test]
fn paper_operating_point_never_fires_on_small_plans() {
    for w in workloads::all(Scale::Eval) {
        let id = w.registry_id();
        let plain = JobSpec::sampled(id, 40);
        let stopped = plain.clone().with_stop(0.0063, 0.998);
        let plain_doc = run_local(&plain, 2).expect("plain run");
        let doc = run_local(&stopped, 2).expect("early-stop-armed run");
        assert_eq!(
            doc.get("early_stopped").and_then(Json::as_bool),
            Some(false),
            "{id}: rule fired below its sample floor"
        );
        assert_eq!(
            doc.get("sites_injected").and_then(Json::as_u64),
            plain_doc.get("sites").and_then(Json::as_u64),
            "{id}: un-fired run did not inject the full plan"
        );
        for field in ["profile", "percentages", "fingerprint", "sites"] {
            assert_eq!(
                doc.get(field).map(Json::to_string),
                plain_doc.get(field).map(Json::to_string),
                "{id}: `{field}` diverged with an un-fired stop rule"
            );
        }
    }
}

/// Guarantee 3a: a firing run is deterministic — byte-identical result
/// documents across reruns and across worker counts — and injects a
/// strict prefix of the plan.
#[test]
fn fired_early_stop_is_reproducible_and_injects_a_prefix() {
    let spec = JobSpec::sampled("gemm", 400).with_stop(0.1, 0.9);
    let first = run_local(&spec, 1).expect("run").to_string();
    for workers in [1, 4] {
        let rerun = run_local(&spec, workers).expect("rerun").to_string();
        assert_eq!(first, rerun, "early-stopped run varies (workers={workers})");
    }
    let doc = Json::parse(&first).expect("well-formed result");
    assert_eq!(doc.get("early_stopped").and_then(Json::as_bool), Some(true));
    let injected = doc
        .get("sites_injected")
        .and_then(Json::as_u64)
        .expect("sites_injected");
    let planned = doc.get("sites").and_then(Json::as_u64).expect("sites");
    assert!(
        injected < planned,
        "fired rule should stop early ({injected} of {planned})"
    );
    let achieved = doc
        .get("achieved_margin")
        .and_then(Json::as_f64)
        .expect("achieved_margin");
    assert!(
        achieved <= 0.1,
        "stopped before the CI fit the margin: {achieved}"
    );
}

/// Guarantee 3b: the early-stopped estimate lies within the requested
/// margin of the full-campaign ground truth (same spec, stop removed).
#[test]
fn fired_estimate_stays_within_margin_of_ground_truth() {
    let margin = 0.1;
    let stopped = JobSpec::sampled("gemm", 400).with_stop(margin, 0.9);
    let full = JobSpec::sampled("gemm", 400);
    let stopped_doc = run_local(&stopped, 2).expect("early-stopped run");
    let full_doc = run_local(&full, 2).expect("ground-truth run");
    assert_eq!(
        stopped_doc.get("early_stopped").and_then(Json::as_bool),
        Some(true),
        "calibration drift: the loose rule no longer fires at n=400"
    );
    let pct = |doc: &Json| -> Vec<f64> {
        doc.get("percentages")
            .and_then(Json::as_arr)
            .expect("percentages array")
            .iter()
            .filter_map(Json::as_f64)
            .collect()
    };
    for (k, (est, truth)) in pct(&stopped_doc).iter().zip(pct(&full_doc)).enumerate() {
        let drift = (est / 100.0 - truth / 100.0).abs();
        assert!(
            drift <= margin,
            "class {k}: early-stopped estimate drifted {drift:.4} > {margin}"
        );
    }
}

/// Guarantee 3c (replay oracle): on fixed-seed synthetic outcome streams
/// delivered out of order, the prefix tracker's stop length is exactly
/// the first contiguous-prefix length at which the CI condition holds —
/// never earlier.
#[test]
fn tracker_never_fires_before_ci_condition_holds_on_prefix() {
    let rule = StopRule::new(0.9, 0.12);
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xC10A_0ACE ^ seed);
        let n = 400;
        let outcomes: Vec<Outcome> = (0..n)
            .map(|_| match rng.gen_range(0u32..100) {
                0..=69 => Outcome::Masked,
                70..=89 => Outcome::Sdc,
                90..=95 => Outcome::CRASH,
                96..=97 => Outcome::HANG,
                _ => Outcome::Detected,
            })
            .collect();
        let mut tracker = EarlyStop::new(rule, vec![1.0; n], [0.0; 5]);
        // Scrambled arrival order: resolve even indices back-to-front
        // first, then odd indices, so the contiguous cursor lags far
        // behind the resolved set.
        let mut order: Vec<usize> = (0..n).step_by(2).rev().collect();
        order.extend((1..n).step_by(2));
        let mut fired_at = None;
        for &i in &order {
            tracker.resolve(i, outcomes[i]);
            if fired_at.is_none() {
                fired_at = tracker.stop_len();
            }
        }
        // In-order replay: the first prefix length satisfying the rule.
        let mut est = StreamEstimator::new();
        let mut first_hold = None;
        for (len, &o) in outcomes.iter().enumerate() {
            est.record(o);
            if rule.should_stop(&est) {
                first_hold = Some(len + 1);
                break;
            }
        }
        match (tracker.stop_len(), first_hold) {
            (Some(stopped), Some(hold)) => assert_eq!(
                stopped, hold,
                "seed {seed}: tracker fired at {stopped}, CI first holds at {hold}"
            ),
            (None, None) => {}
            (got, want) => panic!("seed {seed}: tracker {got:?} vs replay {want:?}"),
        }
        if let Some(at) = fired_at {
            assert_eq!(
                Some(at),
                tracker.stop_len(),
                "seed {seed}: stop length drifted after firing"
            );
        }
    }
}
