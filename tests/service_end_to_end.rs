//! Full service loop over the wire: boot the HTTP server on an ephemeral
//! port, submit a campaign, poll it, fetch the result, then resubmit and
//! verify the persistent store served every site (zero new injections)
//! with a byte-identical result document.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fault_site_pruning::serve::{run_local, Client, Engine, EngineConfig, JobSpec, Json, Server};

const SAMPLES: usize = 250;

fn tmp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsp-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn submit_poll_fetch_and_warm_resubmit() {
    let dir = tmp_dir();
    let engine = Arc::new(Engine::open(EngineConfig::new(&dir).job_workers(1)).unwrap());
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&engine))
        .unwrap()
        .spawn()
        .unwrap();
    let client = Client::new(handle.addr().to_string());

    let kernels = client.kernels().unwrap();
    let ids: Vec<&str> = kernels
        .as_arr()
        .unwrap()
        .iter()
        .filter_map(|k| k.get("id").and_then(Json::as_str))
        .collect();
    assert!(ids.contains(&"gemm"), "registry over the wire: {ids:?}");

    // Error paths before any job exists.
    assert!(client.status("job-999").is_err(), "404 surfaces as Err");
    assert!(
        client.submit(&JobSpec::pruned("no-such-kernel")).is_err(),
        "bad specs are rejected"
    );

    // Cold run: submit, poll to completion, fetch.
    let spec = JobSpec::sampled("gemm", SAMPLES);
    let cold_id = client.submit(&spec).unwrap();
    let status = client.wait(&cold_id, Duration::from_secs(300)).unwrap();
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        status.get("cache_hits").and_then(Json::as_u64),
        Some(0),
        "first run of a fresh store is all misses"
    );
    let cold = client.result(&cold_id).unwrap().to_string();

    // The service path must equal the in-process library path exactly.
    let local = run_local(&spec, 1).unwrap().to_string();
    assert_eq!(cold, local, "service and in-process results must match");

    // Warm resubmit: the store resolves every site; nothing is injected.
    let injected_before = client.metric("fsp_sites_injected_total").unwrap();
    let warm_id = client.submit(&spec).unwrap();
    let status = client.wait(&warm_id, Duration::from_secs(300)).unwrap();
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed")
    );
    assert_eq!(
        status.get("cache_hits").and_then(Json::as_u64),
        Some(SAMPLES as u64),
        "warm resubmit must be a 100% cache hit"
    );
    assert_eq!(
        client.metric("fsp_sites_injected_total").unwrap(),
        injected_before,
        "warm resubmit must inject zero new sites"
    );
    let warm = client.result(&warm_id).unwrap().to_string();
    assert_eq!(warm, cold, "cached result must be byte-identical");

    // Fetching an unfinished/unknown result reports, not panics.
    assert!(client.result("job-999").is_err());

    // Store survives in the metrics and on disk.
    assert!(client.metric("fsp_store_outcomes").unwrap() >= 1.0);
    assert!(
        dir.join("store").join("outcomes.log").exists()
            || dir.join("store").join("checkpoint.bin").exists()
    );

    handle.stop();
    engine.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
