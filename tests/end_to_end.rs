//! Cross-crate integration: trace → group → prune → inject → profile,
//! on real workloads.

use fault_site_pruning::inject::{Experiment, InjectionTarget, WeightedSite};
use fault_site_pruning::pruning::{
    run_baseline, BitSampler, CommonalityConfig, PredBitPolicy, PruningConfig, PruningPipeline,
};
use fault_site_pruning::workloads::{self, Scale};

fn workers() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// The full pipeline conserves exhaustive weight on every kernel.
#[test]
fn weight_conservation_across_all_kernels() {
    for w in workloads::all(Scale::Eval) {
        let experiment = Experiment::prepare(&w).expect("fault-free run");
        let pipeline = PruningPipeline::new(PruningConfig::default());
        let plan = pipeline.plan_for(&experiment).expect("plan");
        let total = plan.total_weight();
        let exhaustive = plan.stages.exhaustive as f64;
        assert!(
            (total - exhaustive).abs() <= 1e-6 * exhaustive,
            "{}: plan weight {total} != exhaustive {exhaustive}",
            w.registry_id()
        );
        assert!(plan.stages.after_bit > 0, "{}: empty plan", w.registry_id());
        assert!(
            plan.stages.after_bit < plan.stages.exhaustive,
            "{}: no reduction",
            w.registry_id()
        );
    }
}

/// Stage counts shrink monotonically on every kernel.
#[test]
fn stages_monotone_on_all_kernels() {
    for w in workloads::all(Scale::Eval) {
        let experiment = Experiment::prepare(&w).expect("fault-free run");
        let plan = PruningPipeline::new(PruningConfig::default())
            .plan_for(&experiment)
            .expect("plan");
        let s = plan.stages;
        assert!(
            s.exhaustive >= s.after_thread
                && s.after_thread >= s.after_instruction
                && s.after_instruction >= s.after_loop
                && s.after_loop >= s.after_bit,
            "{}: {s:?}",
            w.registry_id()
        );
    }
}

/// Pruned campaign tracks the statistical baseline on a fast kernel.
#[test]
fn pruned_profile_tracks_baseline_gaussian() {
    let w = workloads::by_id("gaussian_k1", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let plan = pipeline.plan_for(&experiment).expect("plan");
    let pruned = pipeline.run(&experiment, &plan, workers());
    let space = experiment.site_space(0..w.launch().num_threads());
    let baseline = run_baseline(&experiment, &space, 2000, 11, workers());
    let diff = pruned.max_abs_diff(&baseline);
    assert!(
        diff < 6.0,
        "pruned {pruned} vs baseline {baseline}: diff {diff:.2}%"
    );
}

/// Thread-wise-only pruning with exhaustive bits is *exact* for a kernel
/// whose threads are all representatives of themselves (LUD diagonal: every
/// thread has a distinct iCnt).
#[test]
fn thread_only_pruning_is_exact_for_lud_diagonal() {
    let w = workloads::by_id("lud_k46", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let pipeline = PruningPipeline::new(PruningConfig::thread_wise_only());
    let plan = pipeline.plan_for(&experiment).expect("plan");
    // All 8 threads have distinct triangular work -> all are representatives.
    assert_eq!(plan.grouping.num_representatives(), 8);
    assert_eq!(plan.stages.after_bit, plan.stages.exhaustive);

    let pruned = pipeline.run(&experiment, &plan, workers());
    // Exhaustive ground truth over the entire (small) site space.
    let space = experiment.site_space(0..w.launch().num_threads());
    let all: Vec<WeightedSite> = (0..space.total_sites())
        .map(|i| WeightedSite::from(space.site_at(i)))
        .collect();
    let truth = experiment.run_campaign(&all, workers()).profile;
    assert!(
        pruned.max_abs_diff(&truth) < 1e-9,
        "thread-only pruning over self-representing threads must equal ground truth"
    );
}

/// Campaigns are bit-deterministic across worker counts and repetitions.
#[test]
fn campaigns_are_deterministic() {
    let w = workloads::by_id("gaussian_k125", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let space = experiment.site_space(0..w.launch().num_threads());
    let a = run_baseline(&experiment, &space, 500, 99, 1);
    let b = run_baseline(&experiment, &space, 500, 99, workers());
    assert_eq!(a.percentages(), b.percentages());
}

/// The four outcome classes all occur somewhere across the suite.
#[test]
fn outcome_classes_all_reachable_on_real_kernels() {
    let w = workloads::by_id("pathfinder", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let space = experiment.site_space(0..w.launch().num_threads());
    let baseline = run_baseline(&experiment, &space, 1500, 3, workers());
    assert!(baseline.masked() > 0.0, "no masked outcomes: {baseline}");
    assert!(baseline.sdc() > 0.0, "no SDC outcomes: {baseline}");
    assert!(baseline.other() > 0.0, "no crash/hang outcomes: {baseline}");
}

/// Plans are reproducible: planning twice yields identical site lists.
#[test]
fn plans_are_deterministic() {
    let w = workloads::by_id("kmeans_k2", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let pipeline = PruningPipeline::new(PruningConfig::default());
    let a = pipeline.plan_for(&experiment).expect("plan");
    let b = pipeline.plan_for(&experiment).expect("plan");
    assert_eq!(a.sites, b.sites);
    assert_eq!(a.stages, b.stages);
}

/// Bit-sampling configurations trade runs for (bounded) accuracy drift.
#[test]
fn bit_sampling_reduces_runs_monotonically() {
    let w = workloads::by_id("mvt", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let mut last = u64::MAX;
    for samples in [0u32, 16, 8, 4] {
        let pipeline = PruningPipeline::new(PruningConfig {
            bits: BitSampler {
                samples_per_32: samples,
                pred_policy: PredBitPolicy::All,
            },
            commonality: Some(CommonalityConfig::default()),
            ..PruningConfig::default()
        });
        let plan = pipeline.plan_for(&experiment).expect("plan");
        assert!(
            plan.stages.after_bit <= last,
            "fewer sampled bits must not increase runs"
        );
        last = plan.stages.after_bit;
    }
}
