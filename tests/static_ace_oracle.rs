//! Cross-validation oracle for the static ACE analysis (Stage 0).
//!
//! The static analysis claims certain destination bits can never reach
//! kernel output — flipping them must be invisible. This test *proves* the
//! claim dynamically, per kernel: every statically-dead bit of every
//! dynamic retirement of every representative thread is injected through
//! the real `fsp-inject` machinery and must classify `Masked`. A single
//! non-masked outcome is a soundness bug in `fsp-analyze`.

use fsp_analyze::StaticAceReport;
use fsp_core::ThreadGrouping;
use fsp_inject::{Experiment, FaultSite, WeightedSite};
use fsp_stats::Outcome;
use fsp_workloads::{self as workloads, Scale};

fn workers() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

#[test]
fn statically_dead_bits_are_masked_under_injection() {
    let mut total_injected = 0usize;
    let mut kernels_with_dead_bits = 0usize;
    for w in workloads::all(Scale::Eval) {
        let program = w.program().clone();
        let report = StaticAceReport::analyze(&program);
        if report.summary().dead_bits == 0 {
            continue;
        }
        kernels_with_dead_bits += 1;

        let experiment = Experiment::prepare(&w).expect("fault-free run");
        // Representative threads cover every distinct dynamic behavior the
        // pruning pipeline extrapolates from — exactly the threads whose
        // statically-dead bits Stage 0 skips.
        let summary = experiment.site_space(std::iter::empty());
        let grouping = ThreadGrouping::analyze(summary.trace());
        let reps: Vec<u32> = grouping
            .representatives(summary.trace())
            .iter()
            .map(|r| r.tid)
            .collect();
        let space = experiment.site_space(reps.iter().copied());

        let mut sites = Vec::new();
        for &tid in &reps {
            let trace = &space.trace().full[tid];
            for (dyn_idx, entry) in trace.entries.iter().enumerate() {
                for bit in report.dead_flat_bits(entry.pc as usize) {
                    sites.push(WeightedSite {
                        site: FaultSite {
                            tid,
                            dyn_idx: dyn_idx as u32,
                            bit,
                        },
                        weight: 1.0,
                    });
                }
            }
        }
        assert!(
            !sites.is_empty(),
            "{}: dead bits reported but no dynamic site produced",
            w.registry_id()
        );

        let result = experiment.run_campaign(&sites, workers());
        for (ws, outcome) in sites.iter().zip(&result.outcomes) {
            assert_eq!(
                *outcome,
                Outcome::Masked,
                "{}: statically-dead site {:?} (pc of dyn_idx {} in thread {}) \
                 classified {:?} — static ACE analysis is unsound",
                w.registry_id(),
                ws.site,
                ws.site.dyn_idx,
                ws.site.tid,
                outcome,
            );
        }
        total_injected += sites.len();
    }
    // The oracle is vacuous if the analysis never prunes anything.
    assert!(
        kernels_with_dead_bits >= 10,
        "only {kernels_with_dead_bits} kernels had statically-dead bits"
    );
    assert!(total_injected > 0);
}
