//! Property-based soundness tests for the abstract-value transfer
//! functions in `fsp_analyze::absint`.
//!
//! Every test follows the same scheme: draw a concrete value (or pair),
//! wrap it in a random abstraction that contains it, apply the abstract
//! transfer and the *simulator's* concrete semantics side by side, and
//! assert the concrete result is still inside the abstract one. The
//! concrete semantics here mirror `fsp-sim`'s `exec` exactly: wrapping
//! integer arithmetic, `x / 0 → u32::MAX`, `x % 0 → x`, shifts by ≥ 32
//! collapse to 0 (or all-ones for an arithmetic shift of a negative),
//! and signed compares operate on the `i32` reinterpretation.

use fsp_analyze::{prove_cmp, AbsVal};
use fsp_isa::{CmpOp, ScalarType};
use proptest::prelude::*;

/// γ-membership: `v` is a possible concrete value of `a`.
fn contains(a: &AbsVal, v: u32) -> bool {
    a.lo <= v && v <= a.hi && v & a.zeros == 0
}

/// A random abstraction of `x` (always contains `x` by construction).
fn abstraction(x: u32, mode: u8, d1: u32, d2: u32) -> AbsVal {
    match mode {
        0 => AbsVal::constant(x),
        1 => AbsVal::range(x.saturating_sub(d1), x.saturating_add(d2)),
        2 => AbsVal::range(x, x.saturating_add(d2)),
        _ => AbsVal::TOP,
    }
}

/// Values that sit on the wrapping / sign / width boundaries the transfer
/// functions must get right, mixed with a uniformly random draw.
fn edge(pick: u8, raw: u32) -> u32 {
    match pick {
        0 => 0,
        1 => 1,
        2 => 0x7FFF_FFFF,
        3 => 0x8000_0000,
        4 => u32::MAX,
        5 => u32::MAX - 1,
        6 => 0xFFFF,
        _ => raw,
    }
}

/// The simulator's concrete compare (`exec::compare`).
fn concrete_cmp(x: u32, y: u32, cmp: CmpOp, ty: ScalarType) -> bool {
    let ord = if ty.is_signed() {
        (x as i32).cmp(&(y as i32))
    } else {
        x.cmp(&y)
    };
    match cmp {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Wrapping binary arithmetic and the bitwise operations: the
    /// concrete result stays inside the abstract one, including when the
    /// concrete computation wraps past `u32::MAX`.
    #[test]
    fn binary_transfer_functions_are_sound(
        (xp, xr) in (0u8..8, any::<u32>()),
        (yp, yr) in (0u8..8, any::<u32>()),
        (ma, da1, da2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
        (mb, db1, db2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
    ) {
        let (x, y) = (edge(xp, xr), edge(yp, yr));
        let (a, b) = (abstraction(x, ma, da1, da2), abstraction(y, mb, db1, db2));
        prop_assert!(contains(&a, x) && contains(&b, y));

        let cases: [(&str, AbsVal, u32); 8] = [
            ("add", a.add(&b), x.wrapping_add(y)),
            ("sub", a.sub(&b), x.wrapping_sub(y)),
            ("mul", a.mul(&b), x.wrapping_mul(y)),
            ("and", a.and(&b), x & y),
            ("or", a.or(&b), x | y),
            ("xor", a.xor(&b), x ^ y),
            ("udiv", a.udiv(&b), x.checked_div(y).unwrap_or(u32::MAX)),
            ("urem", a.urem(&b), x.checked_rem(y).unwrap_or(x)),
        ];
        for (op, abs, conc) in cases {
            prop_assert!(
                contains(&abs, conc),
                "{op}: {conc:#x} escapes {abs:?} (x={x:#x} in {a:?}, y={y:#x} in {b:?})"
            );
        }
        // join contains both operands' concretisations.
        let j = a.join(&b);
        prop_assert!(contains(&j, x) && contains(&j, y));
    }

    /// Unary transfers and the derived zero-bit facts.
    #[test]
    fn unary_transfer_functions_are_sound(
        (xp, xr) in (0u8..8, any::<u32>()),
        (m, d1, d2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
    ) {
        let x = edge(xp, xr);
        let a = abstraction(x, m, d1, d2);
        prop_assert!(contains(&a.not(), !x));
        prop_assert!(contains(&a.neg(), x.wrapping_neg()));
        prop_assert!(contains(&a.trunc16(), x & 0xFFFF));
        // known_zeros is a universally-quantified claim about members.
        prop_assert!(x & a.known_zeros() == 0, "{x:#x} vs zeros {:#x}", a.known_zeros());
    }

    /// Shifts, including the ≥-width edge the ISA defines specially:
    /// `shl`/`shr` by ≥ 32 produce 0, except an arithmetic right shift of
    /// a negative value, which produces all-ones.
    #[test]
    fn shift_transfer_functions_are_sound(
        (xp, xr) in (0u8..8, any::<u32>()),
        (m, d1, d2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
        amt in 0u32..64,
    ) {
        let x = edge(xp, xr);
        let a = abstraction(x, m, d1, d2);

        let shl = if amt >= 32 { 0 } else { x << amt };
        prop_assert!(
            contains(&a.shl_const(amt), shl),
            "shl {amt}: {shl:#x} escapes {:?} (x={x:#x})", a.shl_const(amt)
        );

        let lshr = if amt >= 32 { 0 } else { x >> amt };
        prop_assert!(
            contains(&a.shr_const(amt, false), lshr),
            "lshr {amt}: {lshr:#x} escapes {:?} (x={x:#x})", a.shr_const(amt, false)
        );

        let ashr = if amt >= 32 {
            if (x as i32) < 0 { u32::MAX } else { 0 }
        } else {
            ((x as i32) >> amt) as u32
        };
        prop_assert!(
            contains(&a.shr_const(amt, true), ashr),
            "ashr {amt}: {ashr:#x} escapes {:?} (x={x:#x})", a.shr_const(amt, true)
        );
    }

    /// `prove_cmp` decisions are universally true: whenever the abstract
    /// compare answers, the concrete compare of *any* contained pair must
    /// agree — across signed and unsigned views of the same bits, and
    /// across the sign-boundary edge values where the two orders diverge.
    #[test]
    fn proved_compares_agree_with_concrete_execution(
        (xp, xr) in (0u8..8, any::<u32>()),
        (yp, yr) in (0u8..8, any::<u32>()),
        (ma, da1, da2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
        (mb, db1, db2) in (0u8..4, 0u32..0x1000, 0u32..0x1000),
        cmp in prop::sample::select(vec![
            CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge,
        ]),
        ty in prop::sample::select(vec![ScalarType::U32, ScalarType::S32]),
    ) {
        let (x, y) = (edge(xp, xr), edge(yp, yr));
        let (a, b) = (abstraction(x, ma, da1, da2), abstraction(y, mb, db1, db2));
        if let Some(proved) = prove_cmp(&a, &b, cmp, ty) {
            let concrete = concrete_cmp(x, y, cmp, ty);
            prop_assert_eq!(
                proved, concrete,
                "prove_cmp({:?}, {:?}, {:?}, {:?}) = {} but {:#x} vs {:#x} is {}",
                a, b, cmp, ty, proved, x, y, concrete
            );
        }
    }
}
