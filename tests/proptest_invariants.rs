//! Property-based tests of the core invariants.

use fault_site_pruning::inject::SiteSpace;
use fault_site_pruning::pruning::{align_lcs, BitSampler, PredBitPolicy};
use fault_site_pruning::sim::{FullTraces, KernelTrace, ThreadTrace, TraceEntry};
use fault_site_pruning::stats::{
    required_samples_finite, required_samples_infinite, FiveNumber, Outcome, ResilienceProfile,
};
use proptest::prelude::*;

fn trace_from(per_thread: Vec<Vec<(u32, u16)>>) -> KernelTrace {
    let n = per_thread.len();
    let mut icnt = Vec::with_capacity(n);
    let mut fault_bits = Vec::with_capacity(n);
    let mut full = FullTraces::new();
    for (tid, entries) in per_thread.into_iter().enumerate() {
        icnt.push(entries.len() as u32);
        fault_bits.push(entries.iter().map(|&(_, b)| u64::from(b)).sum());
        full.insert(
            tid as u32,
            ThreadTrace {
                entries: entries
                    .into_iter()
                    .map(|(pc, dest_bits)| TraceEntry { pc, dest_bits })
                    .collect(),
            },
        );
    }
    KernelTrace {
        icnt,
        fault_bits,
        threads_per_cta: n.max(1) as u32,
        full,
    }
}

proptest! {
    /// `site_at` enumerates exactly `total_sites()` distinct sites, in
    /// thread/instruction/bit order, agreeing with per-thread enumeration.
    #[test]
    fn site_space_enumeration_is_consistent(
        threads in prop::collection::vec(
            prop::collection::vec((0u32..64, prop::sample::select(vec![0u16, 4, 16, 32, 36])), 0..12),
            1..5,
        )
    ) {
        let space = SiteSpace::new(trace_from(threads));
        let total = space.total_sites();
        let by_index: Vec<_> = (0..total).map(|i| space.site_at(i)).collect();
        let by_thread: Vec<_> = (0..space.trace().num_threads())
            .flat_map(|t| space.thread_site_iter(t))
            .collect();
        prop_assert_eq!(&by_index, &by_thread);
        // Strictly increasing in (tid, dyn_idx, bit).
        for w in by_index.windows(2) {
            let a = (w[0].tid, w[0].dyn_idx, w[0].bit);
            let b = (w[1].tid, w[1].dyn_idx, w[1].bit);
            prop_assert!(a < b, "sites out of order: {:?} then {:?}", a, b);
        }
    }

    /// LCS alignment is monotone, within-bounds and element-matching; its
    /// length never exceeds either input.
    #[test]
    fn lcs_alignment_invariants(
        a in prop::collection::vec(0u32..12, 0..60),
        b in prop::collection::vec(0u32..12, 0..60),
    ) {
        let al = align_lcs(&a, &b);
        prop_assert!(al.pairs.len() <= a.len().min(b.len()));
        for w in al.pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        for &(i, j) in &al.pairs {
            prop_assert_eq!(a[i as usize], b[j as usize]);
        }
        // Aligning equal sequences matches everything.
        let self_al = align_lcs(&a, &a);
        prop_assert_eq!(self_al.pairs.len(), a.len());
    }

    /// LCS is symmetric in length.
    #[test]
    fn lcs_is_length_symmetric(
        a in prop::collection::vec(0u32..8, 0..40),
        b in prop::collection::vec(0u32..8, 0..40),
    ) {
        prop_assert_eq!(align_lcs(&a, &b).pairs.len(), align_lcs(&b, &a).pairs.len());
    }

    /// Bit selection conserves total width: sampled bits x weight plus
    /// assumed-masked bits always account for every destination bit.
    #[test]
    fn bit_sampler_conserves_width(
        samples in prop::sample::select(vec![0u32, 2, 4, 8, 16, 32]),
        width in prop::sample::select(vec![16u32, 32]),
    ) {
        let s = BitSampler { samples_per_32: samples, pred_policy: PredBitPolicy::ZeroFlagOnly };
        let bits = s.positions(width);
        prop_assert!(!bits.is_empty());
        prop_assert!(bits.iter().all(|&b| b < width));
        let weight = f64::from(width) / bits.len() as f64;
        prop_assert!((weight * bits.len() as f64 - f64::from(width)).abs() < 1e-9);
        // Positions strictly increasing.
        for w in bits.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Required sample size is monotone in the error margin and capped by
    /// the population.
    #[test]
    fn sample_sizes_monotone(
        population in 1u64..1_000_000_000,
        margin_milli in 5u64..100,
    ) {
        let loose = required_samples_finite(population, 0.95, margin_milli as f64 / 1000.0);
        let tight = required_samples_finite(population, 0.95, margin_milli as f64 / 2000.0);
        prop_assert!(tight.samples >= loose.samples);
        prop_assert!(loose.samples <= population);
        let infinite = required_samples_infinite(0.95, margin_milli as f64 / 1000.0);
        prop_assert!(loose.samples <= infinite + 1);
    }

    /// Profiles: percentages sum to 100 (when non-empty) and weighted
    /// recording is linear.
    #[test]
    fn profile_percentages_sum(
        masked in 0u32..1000, sdc in 0u32..1000, other in 0u32..1000,
    ) {
        prop_assume!(masked + sdc + other > 0);
        let p = ResilienceProfile::from_counts(masked.into(), sdc.into(), other.into());
        let (m, s, o) = p.percentages();
        prop_assert!((m + s + o - 100.0).abs() < 1e-9);

        let mut doubled = ResilienceProfile::new();
        doubled.record_weighted(Outcome::Masked, f64::from(masked) * 2.0);
        doubled.record_weighted(Outcome::Sdc, f64::from(sdc) * 2.0);
        doubled.record_weighted(Outcome::CRASH, f64::from(other) * 2.0);
        prop_assert!((doubled.pct_masked() - m).abs() < 1e-9);
    }

    /// Five-number summaries are ordered and bounded by the sample.
    #[test]
    fn five_number_ordering(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let f = FiveNumber::of(&values);
        prop_assert!(f.min <= f.q1 && f.q1 <= f.median);
        prop_assert!(f.median <= f.q3 && f.q3 <= f.max);
        prop_assert!(f.mean >= f.min && f.mean <= f.max);
    }
}

/// Strategy: a random straight-line ALU program over a small register set,
/// storing every register to global memory at the end.
fn arbitrary_alu_program() -> impl Strategy<Value = String> {
    let ops = prop::sample::select(vec![
        "add.u32",
        "sub.u32",
        "mul.lo.u32",
        "and.b32",
        "or.b32",
        "xor.b32",
        "shl.u32",
        "shr.u32",
        "min.s32",
        "max.s32",
        "add.f32",
        "mul.f32",
    ]);
    let instr = (ops, 1u8..6, 1u8..6, 1u8..6, any::<u32>(), any::<bool>()).prop_map(
        |(op, d, a, b, imm, use_imm)| {
            if use_imm {
                format!("{op} $r{d}, $r{a}, 0x{imm:08X}")
            } else {
                format!("{op} $r{d}, $r{a}, $r{b}")
            }
        },
    );
    prop::collection::vec(instr, 1..40).prop_map(|body| {
        let mut src = String::from("cvt.u32.u16 $r1, %tid.x\n");
        src.push_str(&body.join("\n"));
        src.push('\n');
        // Store $r1..$r5 to out[tid*5 + k].
        src.push_str("cvt.u32.u16 $r6, %tid.x\nmul.lo.u32 $r7, $r6, 0x14\n");
        for k in 0..5 {
            src.push_str(&format!("st.global.u32 [$r7+{}], $r{}\n", k * 4, k + 1));
        }
        src.push_str("exit\n");
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random ALU programs behave identically under the thread-serial and
    /// warp-lockstep executors, and re-running is bit-deterministic.
    #[test]
    fn random_programs_are_deterministic_across_modes(src in arbitrary_alu_program()) {
        use fault_site_pruning::sim::{Launch, MemBlock, NopHook, Simulator};
        let program = fault_site_pruning::isa::assemble("fuzz", &src)
            .expect("generated program assembles");
        let run = |sim: Simulator| -> Vec<u32> {
            let mut g = MemBlock::with_words(8 * 5);
            sim.run(&Launch::new(program.clone()).block(8, 1, 1), &mut g, &mut NopHook)
                .expect("runs");
            g.to_vec()
        };
        let serial = run(Simulator::new());
        prop_assert_eq!(&serial, &run(Simulator::new()), "serial determinism");
        prop_assert_eq!(&serial, &run(Simulator::warp_lockstep(4)), "warp equivalence");
    }

    /// The disassembly of a random program re-assembles to the identical
    /// instruction stream.
    #[test]
    fn random_programs_roundtrip_disassembly(src in arbitrary_alu_program()) {
        let program = fault_site_pruning::isa::assemble("fuzz", &src).expect("assembles");
        let text = program.to_string();
        let body: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        let again = fault_site_pruning::isa::assemble("fuzz", &body)
            .expect("disassembly re-assembles");
        prop_assert_eq!(program.instructions(), again.instructions());
    }
}
