//! Checks that the workloads reproduce the *structural* facts the paper's
//! methodology rests on: Table I magnitudes, Table III grouping, Table VII
//! loop statistics, and the Figure 7 predicate-bit observation.

use fault_site_pruning::inject::{Experiment, InjectionTarget, WeightedSite};
use fault_site_pruning::pruning::{LoopTagging, ThreadGrouping};
use fault_site_pruning::sim::{KernelTrace, Simulator, Tracer};
use fault_site_pruning::stats::Outcome;
use fault_site_pruning::workloads::{self, Scale, Workload};

fn summary_trace(w: &Workload) -> KernelTrace {
    let launch = w.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = w.init_memory();
    Simulator::new()
        .run(&launch, &mut memory, &mut tracer)
        .expect("fault-free run");
    tracer.finish()
}

/// Table I: paper-scale fault-site counts land within 2.5x of the paper for
/// every kernel (they depend on the exact compiler output; our hand-written
/// PTXPlus matches loop trip counts and geometry).
#[test]
fn table1_site_magnitudes() {
    for w in workloads::all(Scale::Paper) {
        let Some(paper) = w.paper_reference() else {
            continue;
        };
        let trace = summary_trace(&w);
        assert_eq!(trace.num_threads(), paper.threads, "{}", w.registry_id());
        let ratio = trace.total_fault_sites() as f64 / paper.fault_sites;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "{}: site ratio {ratio:.2} out of range (ours {}, paper {})",
            w.registry_id(),
            trace.total_fault_sites(),
            paper.fault_sites
        );
    }
}

/// Table III: 2DCONV's exact group structure — three CTA groups with mean
/// iCnt {43, 47, 11} and proportions {6.25%, 43.75%, 50%}; thread groups
/// with iCnt {13, 15, 48}, {15, 48}, {11}.
#[test]
fn table3_2dconv_grouping() {
    let w = workloads::by_id("2dconv", Scale::Paper).expect("registered");
    let trace = summary_trace(&w);
    let grouping = ThreadGrouping::analyze(&trace);
    assert_eq!(grouping.total_ctas, 32);
    assert_eq!(grouping.groups.len(), 3);
    assert_eq!(grouping.mismatched_threads, 0);

    let g = &grouping.groups;
    // C-1: 2 CTAs (6.25%), thread groups {13, 15, 48}.
    assert_eq!(g[0].ctas.len(), 2);
    assert_eq!(g[0].mean_icnt().round() as u32, 43);
    let icnts: Vec<u32> = g[0].thread_groups.iter().map(|t| t.icnt).collect();
    assert_eq!(icnts, vec![13, 15, 48]);
    // C-2: 14 CTAs (43.75%), thread groups {15, 48}.
    assert_eq!(g[1].ctas.len(), 14);
    assert_eq!(g[1].mean_icnt().round() as u32, 47);
    let icnts: Vec<u32> = g[1].thread_groups.iter().map(|t| t.icnt).collect();
    assert_eq!(icnts, vec![15, 48]);
    // C-3: 16 CTAs (50%), all threads iCnt 11.
    assert_eq!(g[2].ctas.len(), 16);
    assert_eq!(g[2].thread_groups.len(), 1);
    assert_eq!(g[2].thread_groups[0].icnt, 11);
    // Six representatives cover the kernel, as in the paper's Figure 10.
    assert_eq!(grouping.num_representatives(), 6);
}

/// HotSpot produces many CTA groups and a wide iCnt spread (Table IV).
#[test]
fn table4_hotspot_diversity() {
    let w = workloads::by_id("hotspot", Scale::Paper).expect("registered");
    let trace = summary_trace(&w);
    let grouping = ThreadGrouping::analyze(&trace);
    assert!(
        (4..=12).contains(&grouping.groups.len()),
        "expected ~9-10 CTA groups, got {}",
        grouping.groups.len()
    );
    let min = trace.icnt.iter().min().copied().unwrap();
    let max = trace.icnt.iter().max().copied().unwrap();
    assert!(
        f64::from(max) / f64::from(min) > 1.8,
        "iCnt spread {min}..{max} too narrow for Table IV"
    );
}

/// Table VII: loop trip counts match the paper's per-kernel numbers.
#[test]
fn table7_loop_iterations() {
    // (kernel, paper "# loop iter."); NN / HotSpot / Gaussian / 2DCONV /
    // LUD K45 are loop-free.
    let expected: &[(&str, u64, bool)] = &[
        ("hotspot", 0, false),
        ("2dconv", 0, false),
        ("nn", 0, false),
        ("gaussian_k1", 0, false),
        ("gaussian_k2", 0, false),
        ("lud_k45", 0, false),
        ("kmeans_k1", 34, true),
        ("kmeans_k2", 170, true),
        ("pathfinder", 20, true),
        ("gemm", 128, true),
        ("2mm", 128, true),
        ("syrk", 128, true),
        ("mvt", 512, true),
    ];
    for &(id, iters, exact) in expected {
        let w = workloads::by_id(id, Scale::Paper).expect("registered");
        let launch = w.launch();
        let program = launch.program();
        let forest = program.cfg().loops(program);
        let summary = summary_trace(&w);
        let grouping = ThreadGrouping::analyze(&summary);
        let reps: Vec<u32> = grouping
            .representatives(&summary)
            .iter()
            .map(|r| r.tid)
            .collect();
        let mut tracer =
            Tracer::new(launch.num_threads(), launch.threads_per_cta()).with_full_traces(reps);
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .expect("fault-free");
        let trace = tracer.finish();
        let measured = trace
            .full
            .values()
            .map(|t| LoopTagging::analyze(t, &forest).max_total_iterations())
            .max()
            .unwrap_or(0);
        if exact {
            assert_eq!(measured, iters, "{id}: loop iterations");
        } else {
            assert_eq!(measured, 0, "{id}: expected loop-free");
        }
    }
}

/// LUD's triangular kernels: total iterations near the paper's 120.
#[test]
fn table7_lud_triangular_iterations() {
    for id in ["lud_k44", "lud_k46"] {
        let w = workloads::by_id(id, Scale::Paper).expect("registered");
        let launch = w.launch();
        let program = launch.program();
        let forest = program.cfg().loops(program);
        let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta())
            .with_full_traces(0..launch.num_threads());
        let mut memory = w.init_memory();
        Simulator::new()
            .run(&launch, &mut memory, &mut tracer)
            .expect("fault-free");
        let trace = tracer.finish();
        let measured = trace
            .full
            .values()
            .map(|t| LoopTagging::analyze(t, &forest).max_total_iterations())
            .max()
            .unwrap_or(0);
        assert!(
            (90..=150).contains(&measured),
            "{id}: expected ~120 total iterations, got {measured}"
        );
    }
}

/// Figure 7's predicate observation: flipping the sign/carry/overflow flags
/// (bits 1..3) of `.pred` destinations is always masked — only the zero
/// flag feeds branch guards in these kernels.
#[test]
fn fig7_pred_high_flags_are_masked() {
    let w = workloads::by_id("2dconv", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let space = experiment.site_space(0..64);
    let launch = w.launch();
    let program = launch.program();
    let mut sites = Vec::new();
    for tid in 0..64u32 {
        let full = &space.trace().full[tid];
        for (i, e) in full.entries.iter().enumerate() {
            let instr = program.instr(e.pc as usize);
            // First destination slot is the predicate for `set`.
            if instr.opcode == fault_site_pruning::isa::Opcode::Set {
                for bit in 1..4u32 {
                    sites.push(WeightedSite::from(fault_site_pruning::inject::FaultSite {
                        tid,
                        dyn_idx: i as u32,
                        bit,
                    }));
                }
            }
        }
    }
    assert!(!sites.is_empty());
    let result = experiment.run_campaign(&sites, 4);
    assert!(
        result.outcomes.iter().all(|&o| o == Outcome::Masked),
        "all sign/carry/overflow predicate flips must be masked"
    );
}

/// Figure 2 vs Figure 3: the CTA grouping induced by injection outcomes
/// agrees with the grouping induced by iCnt alone (Rand index 1.0 on
/// 2DCONV at eval scale).
#[test]
fn fig2_outcome_grouping_matches_icnt_grouping() {
    use fault_site_pruning::pruning::OutcomeGrouping;
    use fault_site_pruning::stats::{labels_from_groups, rand_index};

    let w = workloads::by_id("2dconv", Scale::Eval).expect("registered");
    let experiment = Experiment::prepare(&w).expect("fault-free run");
    let space = experiment.site_space(0..w.launch().num_threads());
    let pc = OutcomeGrouping::default_target_pc(&space);
    let by_outcome = OutcomeGrouping::analyze(&experiment, &space, pc, 2.0, 8);
    let by_icnt = ThreadGrouping::analyze(space.trace());
    let icnt_groups: Vec<Vec<u32>> = by_icnt.groups.iter().map(|g| g.ctas.clone()).collect();
    let n = space.trace().num_ctas() as usize;
    let agreement = rand_index(&by_outcome.labels(), &labels_from_groups(&icnt_groups, n));
    assert!(
        agreement > 0.999,
        "outcome groups {:?} vs iCnt groups {icnt_groups:?} (rand {agreement:.3})",
        by_outcome.groups
    );
}
