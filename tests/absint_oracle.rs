//! Cross-validation oracle for the abstract-interpretation classifier.
//!
//! [`ClassifyReport`] makes two kinds of static claims about fault sites:
//!
//! 1. **Predicted DUEs** — flipping the bit provably crashes the launch
//!    (OOB/misaligned access) or provably takes a trap guard. The pruning
//!    pipeline records these outcomes *without injecting them*, so a wrong
//!    prediction silently corrupts the resilience profile.
//! 2. **Equivalence classes** — all member bits of a class share their
//!    outcome per dynamic instance, so one representative carries the
//!    whole class weight.
//!
//! This test proves both claims dynamically on the real workloads: every
//! statically-classified site of every representative thread is injected
//! through the `fsp-inject` machinery and the simulated outcome must
//! match the prediction bit-for-bit. A single mismatch is a soundness bug
//! in `fsp-analyze`.

use std::sync::Arc;

use fsp_analyze::{ClassifyReport, PredictedKind};
use fsp_core::{abs_context_for, PruningConfig, PruningPipeline, ThreadGrouping};
use fsp_inject::{Experiment, FaultSite, InjectionTarget, WeightedSite};
use fsp_isa::assemble;
use fsp_sim::{Launch, MemBlock};
use fsp_stats::{Outcome, ResilienceProfile};
use fsp_workloads::{self as workloads, Scale};

fn workers() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// Representative threads of a prepared experiment, exactly as the
/// pruning pipeline picks them.
fn representatives<T: InjectionTarget>(experiment: &Experiment<'_, T>) -> Vec<u32> {
    let summary = experiment.site_space(std::iter::empty());
    let grouping = ThreadGrouping::analyze(summary.trace());
    grouping
        .representatives(summary.trace())
        .iter()
        .map(|r| r.tid)
        .collect()
}

#[test]
fn predicted_due_sites_match_simulated_outcome() {
    let mut total_injected = 0usize;
    let mut kernels_with_predictions = 0usize;
    for w in workloads::all(Scale::Eval) {
        let classify = ClassifyReport::analyze(w.program(), &abs_context_for(&w));
        if classify.summary().predicted_crash_bits + classify.summary().predicted_detected_bits == 0
        {
            continue;
        }
        kernels_with_predictions += 1;

        let experiment = Experiment::prepare(&w).expect("fault-free run");
        let reps = representatives(&experiment);
        let space = experiment.site_space(reps.iter().copied());

        let mut sites = Vec::new();
        let mut expected = Vec::new();
        for &tid in &reps {
            let trace = &space.trace().full[tid];
            for (dyn_idx, entry) in trace.entries.iter().enumerate() {
                for (bit, kind) in classify.predicted_flat_bits(entry.pc as usize) {
                    sites.push(WeightedSite {
                        site: FaultSite {
                            tid,
                            dyn_idx: dyn_idx as u32,
                            bit,
                        },
                        weight: 1.0,
                    });
                    expected.push(kind);
                }
            }
        }
        assert!(
            !sites.is_empty(),
            "{}: predictions reported but no dynamic site produced",
            w.registry_id()
        );

        let result = experiment.run_campaign(&sites, workers());
        for ((ws, kind), outcome) in sites.iter().zip(&expected).zip(&result.outcomes) {
            let want = match kind {
                PredictedKind::Crash => Outcome::CRASH,
                PredictedKind::Detected => Outcome::Detected,
            };
            assert_eq!(
                *outcome,
                want,
                "{}: site {:?} statically predicted {kind:?} but simulated {outcome:?} \
                 — abstract-interpretation classifier is unsound",
                w.registry_id(),
                ws.site,
            );
        }
        total_injected += sites.len();
    }
    // The oracle is vacuous if the classifier never predicts anything.
    assert!(
        kernels_with_predictions >= 5,
        "only {kernels_with_predictions} kernels had predicted-DUE bits"
    );
    assert!(total_injected > 0);
}

#[test]
fn class_members_share_outcome_with_representative() {
    let mut instances_checked = 0usize;
    for w in workloads::all(Scale::Eval) {
        let classify = ClassifyReport::analyze(w.program(), &abs_context_for(&w));
        if classify.summary().class_pruned_bits == 0 {
            continue;
        }

        let experiment = Experiment::prepare(&w).expect("fault-free run");
        let reps = representatives(&experiment);
        let space = experiment.site_space(reps.iter().copied());

        // One injection per (instance, class bit): the representative plus
        // every pruned member, so outcomes can be compared per instance.
        let mut sites = Vec::new();
        let mut groups: Vec<(usize, usize)> = Vec::new(); // (start, len) per instance
        for &tid in &reps {
            let trace = &space.trace().full[tid];
            for (dyn_idx, entry) in trace.entries.iter().enumerate() {
                for class in classify.classes_flat(entry.pc as usize) {
                    let start = sites.len();
                    for bit in std::iter::once(class.rep).chain(class.members.iter().copied()) {
                        sites.push(WeightedSite {
                            site: FaultSite {
                                tid,
                                dyn_idx: dyn_idx as u32,
                                bit,
                            },
                            weight: 1.0,
                        });
                    }
                    groups.push((start, sites.len() - start));
                }
            }
        }
        assert!(
            !sites.is_empty(),
            "{}: classes but no site",
            w.registry_id()
        );

        let result = experiment.run_campaign(&sites, workers());
        for &(start, len) in &groups {
            let rep_outcome = result.outcomes[start];
            for k in 1..len {
                assert_eq!(
                    result.outcomes[start + k],
                    rep_outcome,
                    "{}: class member {:?} diverged from representative {:?} ({:?}) \
                     — equivalence class is unsound",
                    w.registry_id(),
                    sites[start + k].site,
                    sites[start].site,
                    rep_outcome,
                );
            }
            instances_checked += 1;
        }

        // Representative-carries-the-class-weight is exact: a profile built
        // from rep outcomes at class weight equals the full-membership one.
        let mut rep_profile = ResilienceProfile::default();
        let mut full_profile = ResilienceProfile::default();
        for &(start, len) in &groups {
            rep_profile.record_weighted(result.outcomes[start], len as f64);
            for k in 0..len {
                full_profile.record_weighted(result.outcomes[start + k], 1.0);
            }
        }
        assert!(
            rep_profile.max_abs_diff(&full_profile) < 1e-9,
            "{}: representative-weighted profile diverges from full class campaign",
            w.registry_id()
        );
    }
    assert!(instances_checked > 0, "no class instance exercised");
}

/// A 4-thread target whose kernel carries an always-failing trap guard, so
/// the `Detected` prediction path gets dynamic coverage (no stock workload
/// uses `trap`; only hardened kernels do).
#[derive(Debug)]
struct TrapTarget {
    program: Arc<fsp_isa::KernelProgram>,
}

impl TrapTarget {
    const THREADS: u32 = 4;

    fn new() -> Self {
        let program = assemble(
            "trap_guard",
            r#"
            cvt.u32.u16 $r1, %tid.x
            set.eq.u32.u32 $p0/$o127, $r1, 0x100
            @$p0.ne trap
            shl.u32 $r2, $r1, 0x2
            st.global.u32 [$r2], $r1
            exit
            "#,
        )
        .expect("trap kernel assembles");
        TrapTarget {
            program: Arc::new(program),
        }
    }
}

impl InjectionTarget for TrapTarget {
    fn name(&self) -> &str {
        "trap_guard"
    }

    fn launch(&self) -> Launch {
        Launch::new(Arc::clone(&self.program))
            .grid(1, 1)
            .block(Self::THREADS, 1, 1)
    }

    fn init_memory(&self) -> MemBlock {
        MemBlock::with_words(Self::THREADS as usize)
    }

    fn output_region(&self) -> (u32, usize) {
        (0, Self::THREADS as usize)
    }
}

#[test]
fn predicted_detected_sites_trap_under_injection() {
    let target = TrapTarget::new();
    let classify = ClassifyReport::analyze(target.launch().program(), &abs_context_for(&target));
    assert!(
        classify.summary().predicted_detected_bits > 0,
        "trap-guard kernel produced no Detected prediction"
    );

    let experiment = Experiment::prepare(&target).expect("fault-free run");
    let space = experiment.site_space(0..TrapTarget::THREADS);
    let mut sites = Vec::new();
    for tid in 0..TrapTarget::THREADS {
        let trace = &space.trace().full[tid];
        for (dyn_idx, entry) in trace.entries.iter().enumerate() {
            for (bit, kind) in classify.predicted_flat_bits(entry.pc as usize) {
                assert_eq!(kind, PredictedKind::Detected);
                sites.push(WeightedSite {
                    site: FaultSite {
                        tid,
                        dyn_idx: dyn_idx as u32,
                        bit,
                    },
                    weight: 1.0,
                });
            }
        }
    }
    assert!(!sites.is_empty());
    let result = experiment.run_campaign(&sites, workers());
    for (ws, outcome) in sites.iter().zip(&result.outcomes) {
        assert_eq!(
            *outcome,
            Outcome::Detected,
            "site {:?} predicted Detected but simulated {outcome:?}",
            ws.site
        );
    }
}

#[test]
fn absint_plan_conserves_exhaustive_weight() {
    for w in workloads::all(Scale::Eval) {
        let experiment = Experiment::prepare(&w).expect("fault-free run");

        let with = PruningPipeline::new(PruningConfig::default())
            .plan_for(&experiment)
            .expect("plan");
        let without = PruningPipeline::new(PruningConfig {
            absint: false,
            ..PruningConfig::default()
        })
        .plan_for(&experiment)
        .expect("plan");

        let exhaustive = with.stages.exhaustive as f64;
        for (label, plan) in [("absint", &with), ("no-absint", &without)] {
            let total = plan.total_weight();
            assert!(
                (total - exhaustive).abs() < 1e-6 * exhaustive.max(1.0),
                "{} [{label}]: plan accounts {total} of {exhaustive} exhaustive weight",
                w.registry_id()
            );
        }
        assert!(with.stages.after_absint <= with.stages.after_static);
        assert_eq!(without.stages.after_absint, without.stages.after_static);
        assert!(with.classify.is_some());
        assert!(without.classify.is_none());
    }
}
