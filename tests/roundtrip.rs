//! Assembler/disassembler round-trip over every workload kernel: the
//! disassembly of each program must re-assemble to the identical
//! instruction stream, and behave identically under execution.

use fault_site_pruning::inject::InjectionTarget;
use fault_site_pruning::isa::assemble;
use fault_site_pruning::sim::{MemBlock, NopHook, Simulator};
use fault_site_pruning::workloads::{self, Scale};

#[test]
fn all_kernels_roundtrip_through_disassembly() {
    for w in workloads::all(Scale::Eval) {
        let original = w.program();
        let text = original.to_string();
        // Drop the `.entry <name>` header line.
        let body: String = text.lines().skip(1).collect::<Vec<_>>().join("\n");
        let reassembled = assemble(original.name(), &body).unwrap_or_else(|e| {
            panic!(
                "{}: disassembly does not re-assemble: {e}\n{text}",
                w.registry_id()
            )
        });
        assert_eq!(
            original.instructions(),
            reassembled.instructions(),
            "{}: instruction stream changed across round-trip",
            w.registry_id()
        );
    }
}

#[test]
fn reassembled_kernels_execute_identically() {
    for w in workloads::all(Scale::Eval) {
        let original = w.program();
        let body: String = original
            .to_string()
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n");
        let reassembled = assemble(original.name(), &body).expect("re-assembles");

        let run = |program: fault_site_pruning::isa::KernelProgram| -> MemBlock {
            let launch = fault_site_pruning::sim::Launch::new(program)
                .grid(w.launch().grid_dim().0, w.launch().grid_dim().1)
                .block(
                    w.launch().block_dim().0,
                    w.launch().block_dim().1,
                    w.launch().block_dim().2,
                )
                .params(w.launch().param_values().iter().copied());
            let mut memory = w.init_memory();
            Simulator::new()
                .run(&launch, &mut memory, &mut NopHook)
                .expect("runs");
            memory
        };
        let a = run((**original).clone());
        let b = run(reassembled);
        assert_eq!(
            a.to_vec(),
            b.to_vec(),
            "{}: behaviour changed",
            w.registry_id()
        );
    }
}
