//! Cross-validation of the two execution models: the warp-lockstep SIMT
//! executor (GPGPU-Sim's model, with a reconvergence stack) must produce
//! bit-identical memory and identical per-thread dynamic instruction
//! counts to the default thread-serial schedule, on every workload.

use fault_site_pruning::inject::InjectionTarget;
use fault_site_pruning::sim::{Simulator, Tracer};
use fault_site_pruning::workloads::{self, Scale};

fn run_mode(w: &workloads::Workload, sim: Simulator) -> (Vec<u32>, Vec<u32>) {
    let launch = w.launch();
    let mut tracer = Tracer::new(launch.num_threads(), launch.threads_per_cta());
    let mut memory = w.init_memory();
    sim.run(&launch, &mut memory, &mut tracer)
        .unwrap_or_else(|e| panic!("{} under {:?}: {e}", w.registry_id(), sim.mode()));
    (memory.to_vec(), tracer.finish().icnt)
}

#[test]
fn warp_lockstep_matches_thread_serial_on_all_workloads() {
    for w in workloads::all(Scale::Eval) {
        let (mem_serial, icnt_serial) = run_mode(&w, Simulator::new());
        for width in [8u32, 32] {
            let (mem_warp, icnt_warp) = run_mode(&w, Simulator::warp_lockstep(width));
            assert_eq!(
                mem_serial,
                mem_warp,
                "{}: memory differs under warp width {width}",
                w.registry_id()
            );
            assert_eq!(
                icnt_serial,
                icnt_warp,
                "{}: per-thread iCnt differs under warp width {width}",
                w.registry_id()
            );
        }
    }
}

#[test]
fn warp_mode_counts_same_total_instructions() {
    let w = workloads::by_id("pathfinder", Scale::Eval).unwrap();
    let launch = w.launch();
    let run = |sim: Simulator| {
        let mut memory = w.init_memory();
        sim.run(&launch, &mut memory, &mut fault_site_pruning::sim::NopHook)
            .unwrap()
            .instructions
    };
    assert_eq!(run(Simulator::new()), run(Simulator::warp_lockstep(32)));
}
